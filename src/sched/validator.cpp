#include "sched/validator.hpp"

#include <algorithm>
#include <map>

#include "common/text.hpp"

namespace autobraid {

void
ValidationReport::fail(std::string message)
{
    ok = false;
    errors.push_back(std::move(message));
}

std::string
ValidationReport::toString() const
{
    std::string out;
    for (const std::string &e : errors) {
        if (!out.empty())
            out += "\n";
        out += e;
    }
    return out;
}

ValidationReport
validateSchedule(const Circuit &circuit, const ScheduleResult &result,
                 const CostModel &cost, const Grid *grid,
                 size_t max_errors)
{
    ValidationReport report;
    // Failures past max_errors still flip `ok` but are counted instead
    // of stored; a summary entry is appended at the end so a truncated
    // report is never mistaken for a single-defect one.
    size_t suppressed = 0;
    auto fail = [&report, &suppressed, max_errors](std::string msg) {
        if (report.errors.size() < max_errors)
            report.fail(std::move(msg));
        else {
            report.ok = false;
            ++suppressed;
        }
    };
    auto finish = [&report, &suppressed]() -> ValidationReport {
        if (suppressed > 0)
            report.errors.push_back(
                strformat("... suppressed %zu additional errors",
                          suppressed));
        return std::move(report);
    };

    if (!result.valid) {
        fail("result is marked invalid");
        return finish();
    }
    if (result.trace.empty()) {
        fail("no trace recorded; enable SchedulerConfig::record_trace");
        return finish();
    }

    // 1. Coverage: every gate exactly once; swaps accounted. Time
    //    windows must be ordered *before* anything subtracts them:
    //    finish - start on Cycles (uint64_t) wraps to a huge bogus
    //    duration when a buggy trace has finish < start.
    std::map<GateIdx, const TraceEntry *> by_gate;
    size_t swap_entries = 0;
    size_t braid_entries = 0;
    for (size_t i = 0; i < result.trace.size(); ++i) {
        const TraceEntry &e = result.trace[i];
        if (e.finish < e.start)
            fail(strformat("trace entry %zu: finish %llu precedes "
                           "start %llu",
                           i,
                           static_cast<unsigned long long>(e.finish),
                           static_cast<unsigned long long>(e.start)));
        if (e.channel_release > 0 &&
            (e.channel_release > e.finish ||
             e.channel_release < e.start))
            fail(strformat("trace entry %zu: channel release %llu "
                           "outside window [%llu, %llu]",
                           i,
                           static_cast<unsigned long long>(
                               e.channel_release),
                           static_cast<unsigned long long>(e.start),
                           static_cast<unsigned long long>(e.finish)));
        if (e.gate != kNoGate && !e.path.empty())
            ++braid_entries;
        if (e.gate == kNoGate) {
            ++swap_entries;
            if (e.swap_a == kNoQubit || e.swap_b == kNoQubit)
                fail("swap entry without qubit pair");
            if (e.path.empty())
                fail("swap entry without a braiding path");
            continue;
        }
        if (e.gate >= circuit.size()) {
            fail(strformat("trace references gate %zu beyond circuit "
                           "size %zu",
                           e.gate, circuit.size()));
            continue;
        }
        if (!by_gate.emplace(e.gate, &e).second)
            fail(strformat("gate %zu scheduled twice", e.gate));
    }
    if (by_gate.size() != circuit.size())
        fail(strformat("%zu of %zu gates missing from the trace",
                       circuit.size() - by_gate.size(),
                       circuit.size()));
    if (swap_entries != result.swaps_inserted)
        fail(strformat("trace has %zu swap entries but result reports "
                       "%zu",
                       swap_entries, result.swaps_inserted));

    // 2. Durations and makespan. Expected durations depend on the
    //    backend that produced the schedule (lattice surgery charges
    //    2d cycles per CX instead of the 2d+2 braid window).
    Cycles last_gate_finish = 0;
    for (const auto &[g, e] : by_gate) {
        const Gate &gate = circuit.gate(g);
        const Cycles want =
            backendGateDuration(cost, result.backend, gate);
        last_gate_finish = std::max(last_gate_finish, e->finish);
        if (e->finish < e->start)
            continue; // already reported; subtraction would wrap
        if (e->finish - e->start != want)
            fail(strformat("gate %zu (%s): duration %llu, expected "
                           "%llu",
                           g, gate.toString().c_str(),
                           static_cast<unsigned long long>(
                               e->finish - e->start),
                           static_cast<unsigned long long>(want)));
        if (e->finish > result.makespan)
            fail(strformat("gate %zu finishes at %llu past makespan "
                           "%llu",
                           g,
                           static_cast<unsigned long long>(e->finish),
                           static_cast<unsigned long long>(
                               result.makespan)));
        if (needsBraid(gate.kind) && e->path.empty())
            fail(strformat("braid gate %zu has no path", g));
    }
    // When the trace is complete these counters must agree exactly:
    // the makespan is defined as the last gate retirement (swap
    // entries may legitimately finish later), and every routed braid
    // leaves exactly one gate entry carrying a path.
    if (by_gate.size() == circuit.size() && !circuit.empty()) {
        if (last_gate_finish != result.makespan)
            fail(strformat("last gate finishes at %llu but makespan "
                           "is %llu",
                           static_cast<unsigned long long>(
                               last_gate_finish),
                           static_cast<unsigned long long>(
                               result.makespan)));
        if (braid_entries != result.braids_routed)
            fail(strformat("trace has %zu braid entries but result "
                           "reports %zu routed",
                           braid_entries, result.braids_routed));
    }

    // 3. Dependence order.
    if (by_gate.size() == circuit.size()) {
        const Dag dag(circuit);
        for (GateIdx g = 0; g < circuit.size(); ++g)
            for (GateIdx p : dag.preds(g))
                if (by_gate.at(g)->start < by_gate.at(p)->finish)
                    fail(strformat("gate %zu starts at %llu before "
                                   "predecessor %zu finishes at %llu",
                                   g,
                                   static_cast<unsigned long long>(
                                       by_gate.at(g)->start),
                                   p,
                                   static_cast<unsigned long long>(
                                       by_gate.at(p)->finish)));
    }

    // 4. Path well-formedness (geometry only; endpoint anchoring needs
    //    per-issue placements, so only adjacency/simplicity is checked
    //    unless the caller knows the layout was static). A lattice-
    //    surgery trace records merge *regions* — bus path plus the
    //    operand tiles' live corners, which need not be contiguous —
    //    so only bounds and simplicity apply there.
    if (grid != nullptr) {
        const bool contiguous =
            result.backend != SchedulerBackend::LatticeSurgery;
        for (const TraceEntry &e : result.trace) {
            if (e.path.empty())
                continue;
            for (size_t i = 0; i < e.path.vertices.size(); ++i) {
                const VertexId v = e.path.vertices[i];
                if (v < 0 || v >= grid->numVertices()) {
                    fail(strformat("path vertex id %d out of range",
                                   v));
                    break;
                }
                if (contiguous && i > 0) {
                    const Vertex a =
                        grid->vertex(e.path.vertices[i - 1]);
                    const Vertex b = grid->vertex(v);
                    if (a.dist(b) != 1) {
                        fail(strformat("path hop %s -> %s is not a "
                                       "unit channel segment",
                                       a.toString().c_str(),
                                       b.toString().c_str()));
                        break;
                    }
                }
                if (std::count(e.path.vertices.begin(),
                               e.path.vertices.end(), v) != 1) {
                    fail("path revisits a vertex");
                    break;
                }
            }
        }
    }

    // 5. Temporally overlapping braids must be vertex-disjoint.
    std::vector<const TraceEntry *> braids;
    for (const TraceEntry &e : result.trace)
        if (!e.path.empty())
            braids.push_back(&e);
    std::sort(braids.begin(), braids.end(),
              [](const TraceEntry *a, const TraceEntry *b) {
                  return a->start < b->start;
              });
    // The channel is held until channel_release (== finish for
    // braiding; earlier in teleportation mode; 0 in hand-built traces
    // means "use finish").
    auto release = [](const TraceEntry &e) {
        return e.channel_release > 0 ? e.channel_release : e.finish;
    };
    for (size_t i = 0; i < braids.size(); ++i) {
        for (size_t j = i + 1; j < braids.size(); ++j) {
            const TraceEntry &a = *braids[i];
            const TraceEntry &b = *braids[j];
            if (b.start >= release(a))
                break; // sorted by start: no later overlap either
            for (VertexId va : a.path.vertices) {
                if (std::find(b.path.vertices.begin(),
                              b.path.vertices.end(),
                              va) != b.path.vertices.end()) {
                    fail(strformat(
                        "braids overlapping in time share vertex %d",
                        va));
                    break;
                }
            }
        }
    }
    return finish();
}

} // namespace autobraid

#include "sched/validator.hpp"

#include <algorithm>
#include <map>

#include "common/text.hpp"

namespace autobraid {

void
ValidationReport::fail(std::string message)
{
    ok = false;
    errors.push_back(std::move(message));
}

std::string
ValidationReport::toString() const
{
    std::string out;
    for (const std::string &e : errors) {
        if (!out.empty())
            out += "\n";
        out += e;
    }
    return out;
}

ValidationReport
validateSchedule(const Circuit &circuit, const ScheduleResult &result,
                 const CostModel &cost, const Grid *grid,
                 size_t max_errors)
{
    ValidationReport report;
    auto fail = [&report, max_errors](std::string msg) {
        if (report.errors.size() < max_errors)
            report.fail(std::move(msg));
        else
            report.ok = false;
    };

    if (!result.valid) {
        fail("result is marked invalid");
        return report;
    }
    if (result.trace.empty()) {
        fail("no trace recorded; enable SchedulerConfig::record_trace");
        return report;
    }

    // 1. Coverage: every gate exactly once; swaps accounted.
    std::map<GateIdx, const TraceEntry *> by_gate;
    size_t swap_entries = 0;
    for (const TraceEntry &e : result.trace) {
        if (e.gate == kNoGate) {
            ++swap_entries;
            if (e.swap_a == kNoQubit || e.swap_b == kNoQubit)
                fail("swap entry without qubit pair");
            if (e.path.empty())
                fail("swap entry without a braiding path");
            continue;
        }
        if (e.gate >= circuit.size()) {
            fail(strformat("trace references gate %zu beyond circuit "
                           "size %zu",
                           e.gate, circuit.size()));
            continue;
        }
        if (!by_gate.emplace(e.gate, &e).second)
            fail(strformat("gate %zu scheduled twice", e.gate));
    }
    if (by_gate.size() != circuit.size())
        fail(strformat("%zu of %zu gates missing from the trace",
                       circuit.size() - by_gate.size(),
                       circuit.size()));
    if (swap_entries != result.swaps_inserted)
        fail(strformat("trace has %zu swap entries but result reports "
                       "%zu",
                       swap_entries, result.swaps_inserted));

    // 2. Durations and makespan.
    for (const auto &[g, e] : by_gate) {
        const Gate &gate = circuit.gate(g);
        const Cycles want = cost.duration(gate);
        if (e->finish - e->start != want)
            fail(strformat("gate %zu (%s): duration %llu, expected "
                           "%llu",
                           g, gate.toString().c_str(),
                           static_cast<unsigned long long>(
                               e->finish - e->start),
                           static_cast<unsigned long long>(want)));
        if (e->finish > result.makespan)
            fail(strformat("gate %zu finishes at %llu past makespan "
                           "%llu",
                           g,
                           static_cast<unsigned long long>(e->finish),
                           static_cast<unsigned long long>(
                               result.makespan)));
        if (needsBraid(gate.kind) && e->path.empty())
            fail(strformat("braid gate %zu has no path", g));
    }

    // 3. Dependence order.
    if (by_gate.size() == circuit.size()) {
        const Dag dag(circuit);
        for (GateIdx g = 0; g < circuit.size(); ++g)
            for (GateIdx p : dag.preds(g))
                if (by_gate.at(g)->start < by_gate.at(p)->finish)
                    fail(strformat("gate %zu starts at %llu before "
                                   "predecessor %zu finishes at %llu",
                                   g,
                                   static_cast<unsigned long long>(
                                       by_gate.at(g)->start),
                                   p,
                                   static_cast<unsigned long long>(
                                       by_gate.at(p)->finish)));
    }

    // 4. Path well-formedness (geometry only; endpoint anchoring needs
    //    per-issue placements, so only adjacency/simplicity is checked
    //    unless the caller knows the layout was static).
    if (grid != nullptr) {
        for (const TraceEntry &e : result.trace) {
            if (e.path.empty())
                continue;
            for (size_t i = 0; i < e.path.vertices.size(); ++i) {
                const VertexId v = e.path.vertices[i];
                if (v < 0 || v >= grid->numVertices()) {
                    fail(strformat("path vertex id %d out of range",
                                   v));
                    break;
                }
                if (i > 0) {
                    const Vertex a =
                        grid->vertex(e.path.vertices[i - 1]);
                    const Vertex b = grid->vertex(v);
                    if (a.dist(b) != 1) {
                        fail(strformat("path hop %s -> %s is not a "
                                       "unit channel segment",
                                       a.toString().c_str(),
                                       b.toString().c_str()));
                        break;
                    }
                }
                if (std::count(e.path.vertices.begin(),
                               e.path.vertices.end(), v) != 1) {
                    fail("path revisits a vertex");
                    break;
                }
            }
        }
    }

    // 5. Temporally overlapping braids must be vertex-disjoint.
    std::vector<const TraceEntry *> braids;
    for (const TraceEntry &e : result.trace)
        if (!e.path.empty())
            braids.push_back(&e);
    std::sort(braids.begin(), braids.end(),
              [](const TraceEntry *a, const TraceEntry *b) {
                  return a->start < b->start;
              });
    // The channel is held until channel_release (== finish for
    // braiding; earlier in teleportation mode; 0 in hand-built traces
    // means "use finish").
    auto release = [](const TraceEntry &e) {
        return e.channel_release > 0 ? e.channel_release : e.finish;
    };
    for (size_t i = 0; i < braids.size(); ++i) {
        for (size_t j = i + 1; j < braids.size(); ++j) {
            const TraceEntry &a = *braids[i];
            const TraceEntry &b = *braids[j];
            if (b.start >= release(a))
                break; // sorted by start: no later overlap either
            for (VertexId va : a.path.vertices) {
                if (std::find(b.path.vertices.begin(),
                              b.path.vertices.end(),
                              va) != b.path.vertices.end()) {
                    fail(strformat(
                        "braids overlapping in time share vertex %d",
                        va));
                    break;
                }
            }
        }
    }
    return report;
}

} // namespace autobraid

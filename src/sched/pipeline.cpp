#include "sched/pipeline.hpp"

#include <chrono>

#include "circuit/coupling.hpp"
#include "common/error.hpp"
#include "place/linear.hpp"

namespace autobraid {

SchedulerConfig
CompileOptions::schedulerConfig() const
{
    SchedulerConfig cfg;
    cfg.policy = policy;
    cfg.cost = cost;
    cfg.p_threshold = p_threshold;
    cfg.allow_maslov = allow_maslov;
    cfg.seed = seed;
    cfg.record_trace = record_trace;
    cfg.dead_vertices = dead_vertices;
    cfg.baseline_order = baseline_order;
    cfg.channel_hold_cycles = channel_hold_cycles;
    cfg.placement = placement;
    return cfg;
}

double
CompileReport::cpRatio() const
{
    if (critical_path == 0)
        return 1.0;
    return static_cast<double>(result.makespan) /
           static_cast<double>(critical_path);
}

CompileReport
compilePipeline(const Circuit &circuit, const CompileOptions &options)
{
    const auto wall_start = std::chrono::steady_clock::now();
    CompileReport report;
    report.circuit_name = circuit.name();
    report.policy = options.policy;
    report.num_qubits = circuit.numQubits();
    report.num_gates = circuit.size();

    const Grid grid = Grid::forQubits(circuit.numQubits());
    report.grid_side = grid.rows();

    const SchedulerConfig config = options.schedulerConfig();
    Rng rng(options.seed);
    const auto place_start = std::chrono::steady_clock::now();
    const Placement placement = initialPlacement(
        circuit, grid, rng, config.placementFor(options.policy));
    report.placement_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - place_start)
            .count();

    const BraidScheduler scheduler(circuit, grid, config);
    report.critical_path =
        scheduler.dag().criticalPath(options.cost.durationFn());
    report.result = scheduler.run(placement);

    // The paper sweeps the optimizer trigger p and keeps the best; at
    // minimum the optimizer must never lose to not triggering at all,
    // so AutobraidFull also evaluates the p = 0 (never trigger) run.
    if (options.policy == SchedulerPolicy::AutobraidFull &&
        options.best_of_p0 && options.p_threshold > 0.0) {
        SchedulerConfig no_trigger = config;
        no_trigger.p_threshold = 0.0;
        const BraidScheduler plain(circuit, grid, no_trigger);
        const ScheduleResult alt = plain.run(placement);
        if (alt.valid && alt.makespan < report.result.makespan)
            report.result = alt;
    }

    // Maslov alternative for all-to-all coupling patterns.
    if (options.policy == SchedulerPolicy::AutobraidFull &&
        options.allow_maslov) {
        const CouplingGraph coupling(circuit);
        if (coupling.isAllToAllLike(config.all_to_all_density)) {
            std::vector<Qubit> order(
                static_cast<size_t>(circuit.numQubits()));
            for (Qubit q = 0; q < circuit.numQubits(); ++q)
                order[static_cast<size_t>(q)] = q;
            const Placement line = snakePlacement(grid, order);
            const ScheduleResult alt = scheduler.runMaslov(line);
            if (alt.valid &&
                (!report.result.valid ||
                 alt.makespan < report.result.makespan)) {
                report.result = alt;
                report.used_maslov = true;
            }
        }
    }

    report.total_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    return report;
}

std::vector<std::pair<double, CompileReport>>
sweepPThreshold(const Circuit &circuit, CompileOptions options,
                const std::vector<double> &thresholds)
{
    std::vector<double> ps = thresholds;
    if (ps.empty())
        for (int i = 0; i <= 9; ++i)
            ps.push_back(0.1 * i);
    options.policy = SchedulerPolicy::AutobraidFull;
    options.best_of_p0 = false; // expose each threshold's raw effect

    std::vector<std::pair<double, CompileReport>> out;
    out.reserve(ps.size());
    for (double p : ps) {
        CompileOptions o = options;
        o.p_threshold = p;
        out.emplace_back(p, compilePipeline(circuit, o));
    }
    return out;
}

long
physicalQubits(const CompileReport &report,
               const SurfaceCodeParams &params, int distance)
{
    return params.physicalQubits(report.grid_side * report.grid_side,
                                 distance);
}

} // namespace autobraid

/**
 * @file
 * ResourceModel — the seam between the event-driven scheduling core and
 * backend-specific communication machinery.
 *
 * The dispatch loop in sched/scheduler.cpp is backend-agnostic: at every
 * instant it asks the model to try-acquire resources for the ready
 * two-qubit gates (one grid-vertex region per gate), holds each region
 * for a model-defined window, and releases it through the existing
 * TimedOccupancy expiry heap. What a "region" is belongs to the model:
 * braiding acquires thin vertex-disjoint corner-to-corner paths
 * (BraidResourceModel, sched/resource_model.cpp); lattice surgery
 * acquires merge regions — an ancilla bus plus the live corners of both
 * operand tiles (LatticeSurgeryResourceModel, src/surgery/).
 *
 * The interface is header-only so lower layers can implement it without
 * linking ab_sched.
 */

#ifndef AUTOBRAID_SCHED_RESOURCE_MODEL_HPP
#define AUTOBRAID_SCHED_RESOURCE_MODEL_HPP

#include <memory>
#include <vector>

#include "circuit/gate.hpp"
#include "lattice/cost_model.hpp"
#include "llg/bbox.hpp"
#include "route/stack_finder.hpp"

namespace autobraid {

struct SchedulerConfig;

/** Abstract per-backend resource acquisition for one scheduling run. */
class ResourceModel
{
  public:
    virtual ~ResourceModel() = default;

    /**
     * Try to acquire communication resources for the ready two-qubit
     * gates of one scheduling instant. Each routed entry's Path holds
     * the acquired region as an ordered vertex set; regions must be
     * mutually vertex-disjoint and avoid externally @p blocked vertices
     * (one byte per grid vertex, non-zero = unavailable).
     */
    virtual RoutingOutcome acquire(const std::vector<CxTask> &tasks,
                                   BlockedMask blocked) = 0;

    /** Backend-specific duration of @p g in surface-code cycles. */
    virtual Cycles gateDuration(const Gate &g) const = 0;

    /**
     * How long an acquired region stays reserved for a gate that runs
     * for @p dur cycles. Braiding may release early in teleportation
     * mode (channel_hold_cycles); a lattice-surgery merge region is
     * held for the whole merge+split window.
     */
    virtual Cycles regionHold(Cycles dur) const = 0;

    /** Human-readable model name for reports. */
    virtual const char *name() const = 0;
};

/**
 * Build the resource model for @p config's backend. Maslov swap-network
 * mode always gets the braiding model (the network is a braiding-only
 * construction).
 */
std::unique_ptr<ResourceModel>
makeResourceModel(const Grid &grid, const SchedulerConfig &config,
                  bool maslov_mode);

} // namespace autobraid

#endif // AUTOBRAID_SCHED_RESOURCE_MODEL_HPP

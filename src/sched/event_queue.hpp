/**
 * @file
 * Discrete-event queue for the braid scheduler.
 */

#ifndef AUTOBRAID_SCHED_EVENT_QUEUE_HPP
#define AUTOBRAID_SCHED_EVENT_QUEUE_HPP

#include <cstdint>
#include <queue>
#include <vector>

#include "circuit/dag.hpp"

namespace autobraid {

/** One scheduler event. */
struct Event
{
    /** Event categories. */
    enum class Kind : uint8_t
    {
        GateFinish, ///< a circuit gate retires; payload = gate index
        SwapFinish, ///< an inserted SWAP lands; payload = swap record id
    };

    Cycles time = 0;
    Kind kind = Kind::GateFinish;
    uint64_t payload = 0;
};

/** Min-heap of events keyed by time. */
class EventQueue
{
  public:
    bool empty() const { return heap_.empty(); }

    size_t size() const { return heap_.size(); }

    /** Enqueue an event. */
    void push(const Event &e) { heap_.push(e); }

    /** Time of the earliest event. Raises InternalError when empty. */
    Cycles nextTime() const;

    /**
     * Pop every event scheduled at exactly nextTime(). The returned
     * reference points at an internal buffer reused across calls
     * (allocation-free in steady state); it stays valid until the next
     * popBatch() call. Pushing while iterating the batch is safe.
     */
    const std::vector<Event> &popBatch();

  private:
    std::vector<Event> batch_;
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            return a.time > b.time;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace autobraid

#endif // AUTOBRAID_SCHED_EVENT_QUEUE_HPP

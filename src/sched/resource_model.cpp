#include "sched/resource_model.hpp"

#include "route/greedy_finder.hpp"
#include "sched/policy.hpp"
#include "surgery/surgery_model.hpp"

namespace autobraid {
namespace {

/**
 * Braiding backend: vertex-disjoint corner-to-corner paths via the
 * policy's path finder, held for the CX window (or the teleportation
 * channel-hold prefix). This is the pre-seam scheduler behaviour moved
 * behind the interface, byte-for-byte: finder selection, path search
 * order, and hold arithmetic are unchanged.
 */
class BraidResourceModel final : public ResourceModel
{
  public:
    BraidResourceModel(const Grid &grid, const SchedulerConfig &config,
                       bool maslov_mode)
        : cost_(config.cost),
          channel_hold_(config.channel_hold_cycles)
    {
        if (maslov_mode ||
            config.policy != SchedulerPolicy::Baseline) {
            finder_ = std::make_unique<StackPathFinder>(
                grid, config.route_jobs);
        } else {
            // With lattice defects the fixed NW corner may be dead, so
            // the baseline falls back to all-corner endpoints.
            finder_ = std::make_unique<GreedyPathFinder>(
                grid, config.baseline_order,
                !config.dead_vertices.empty());
        }
    }

    RoutingOutcome
    acquire(const std::vector<CxTask> &tasks,
            BlockedMask blocked) override
    {
        return finder_->findPaths(tasks, blocked);
    }

    Cycles
    gateDuration(const Gate &g) const override
    {
        return cost_.duration(g);
    }

    Cycles
    regionHold(Cycles dur) const override
    {
        const Cycles hold = channel_hold_;
        if (hold == 0 || hold > dur)
            return dur;
        return hold;
    }

    const char *name() const override { return finder_->name(); }

  private:
    const CostModel cost_;
    const Cycles channel_hold_;
    std::unique_ptr<PathFinder> finder_;
};

} // namespace

std::unique_ptr<ResourceModel>
makeResourceModel(const Grid &grid, const SchedulerConfig &config,
                  bool maslov_mode)
{
    if (!maslov_mode &&
        config.backend == SchedulerBackend::LatticeSurgery)
        return std::make_unique<LatticeSurgeryResourceModel>(
            grid, config.cost, config.dead_vertices);
    return std::make_unique<BraidResourceModel>(grid, config,
                                                maslov_mode);
}

} // namespace autobraid

/**
 * @file
 * Scheduler backend selector and backend-aware gate timing.
 *
 * The scheduling core is backend-agnostic (see sched/resource_model.hpp);
 * this header names the two communication backends the repo compares:
 *  - Braiding: a CX is a vertex-disjoint corner-to-corner path held for
 *    the 2d+2-cycle braid window (the paper's model);
 *  - LatticeSurgery: a CX is a patch merge + split occupying an
 *    ancilla-bus region for 2d cycles (Horsman-style lattice surgery,
 *    via Paler's braid<->LS translation; see docs/backends.md).
 *
 * Header-only so layers below the scheduler (src/surgery/) can use the
 * enum and the timing helpers without linking ab_sched.
 */

#ifndef AUTOBRAID_SCHED_BACKEND_HPP
#define AUTOBRAID_SCHED_BACKEND_HPP

#include <cstdint>
#include <string>

#include "common/error.hpp"
#include "lattice/cost_model.hpp"

namespace autobraid {

/** Communication-backend selector. */
enum class SchedulerBackend : uint8_t
{
    Braiding,
    LatticeSurgery,
};

/** Display name of @p backend. */
inline const char *
backendName(SchedulerBackend backend)
{
    switch (backend) {
      case SchedulerBackend::Braiding: return "braiding";
      case SchedulerBackend::LatticeSurgery: return "lattice-surgery";
    }
    panic("backendName: unknown backend %d",
          static_cast<int>(backend));
}

/** CLI spelling of @p backend (--backend=...). */
inline const char *
backendCliName(SchedulerBackend backend)
{
    switch (backend) {
      case SchedulerBackend::Braiding: return "braiding";
      case SchedulerBackend::LatticeSurgery: return "surgery";
    }
    panic("backendCliName: unknown backend %d",
          static_cast<int>(backend));
}

/**
 * Parse a CLI backend name. Raises UserError listing the valid names on
 * anything unrecognized — never silently defaults.
 */
inline SchedulerBackend
parseBackendName(const std::string &name)
{
    if (name == "braiding")
        return SchedulerBackend::Braiding;
    if (name == "surgery" || name == "lattice-surgery")
        return SchedulerBackend::LatticeSurgery;
    fatal("unknown backend '%s' (valid: braiding, surgery)",
          name.c_str());
}

/**
 * Duration of @p g under @p backend. Identical to CostModel::duration
 * for braiding; lattice surgery replaces the CX braid window with the
 * merge+split window (and SWAP with three of them).
 */
inline Cycles
backendGateDuration(const CostModel &cost, SchedulerBackend backend,
                    const Gate &g)
{
    if (backend == SchedulerBackend::LatticeSurgery) {
        if (g.kind == GateKind::CX)
            return cost.lsCxCycles();
        if (g.kind == GateKind::Swap)
            return cost.lsSwapCycles();
    }
    return cost.duration(g);
}

/**
 * Duration callback for Dag::criticalPath and the scheduler, matching
 * what the @p backend actually charges per gate (a braiding-timed
 * critical path would overestimate lattice-surgery lower bounds).
 */
inline DurationFn
backendDurationFn(const CostModel &cost, SchedulerBackend backend)
{
    return [model = cost, backend](const Gate &g) {
        return backendGateDuration(model, backend, g);
    };
}

} // namespace autobraid

#endif // AUTOBRAID_SCHED_BACKEND_HPP

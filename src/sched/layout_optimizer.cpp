#include "sched/layout_optimizer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

LayoutOptimizer::LayoutOptimizer(const Grid &grid) : finder_(grid) {}

long
LayoutOptimizer::interferenceCount(const std::vector<BBox> &boxes)
{
    long count = 0;
    for (size_t i = 0; i < boxes.size(); ++i)
        for (size_t j = i + 1; j < boxes.size(); ++j)
            if (boxes[i].intersects(boxes[j]))
                ++count;
    return count;
}

std::vector<PlannedSwap>
LayoutOptimizer::propose(const std::vector<CxTask> &failed_tasks,
                         const Placement &placement,
                         BlockedMask blocked,
                         const std::vector<uint8_t> &movable)
{
    AUTOBRAID_SPAN("sched.layout_optimizer");
    AUTOBRAID_OBSERVE("sched.layout_failed_tasks",
                      static_cast<double>(failed_tasks.size()));
    const Grid &grid = placement.grid();

    // Work only on tasks whose operands may move. Recover the operand
    // qubits from the current placement (ready CX gates are pairwise
    // qubit-disjoint, so cell -> qubit is unambiguous).
    struct Entry
    {
        Qubit qa, qb;
        CellId ca, cb;
    };
    std::vector<Entry> entries;
    for (const CxTask &t : failed_tasks) {
        const Qubit qa = placement.qubitAt(grid.cid(t.a));
        const Qubit qb = placement.qubitAt(grid.cid(t.b));
        require(qa != kNoQubit && qb != kNoQubit,
                "LayoutOptimizer: task endpoints have no qubits");
        if (!movable[static_cast<size_t>(qa)] ||
            !movable[static_cast<size_t>(qb)])
            continue;
        entries.push_back(
            Entry{qa, qb, grid.cid(t.a), grid.cid(t.b)});
    }
    if (entries.size() < 2)
        return {};

    // Hypothetical post-swap cell of every involved qubit.
    std::vector<CellId> hcell(
        static_cast<size_t>(placement.numQubits()), -1);
    for (const Entry &e : entries) {
        hcell[static_cast<size_t>(e.qa)] = e.ca;
        hcell[static_cast<size_t>(e.qb)] = e.cb;
    }

    auto boxes_now = [&]() {
        std::vector<BBox> boxes;
        boxes.reserve(entries.size());
        for (const Entry &e : entries)
            boxes.push_back(outerBBox(
                grid.cell(hcell[static_cast<size_t>(e.qa)]),
                grid.cell(hcell[static_cast<size_t>(e.qb)])));
        return boxes;
    };

    std::vector<uint8_t> task_used(entries.size(), 0);
    std::vector<std::pair<Qubit, Qubit>> accepted;
    std::vector<Path> accepted_paths;

    // Swap braids always run between the qubits' *current* tiles.
    auto route_accepted = [&](std::vector<Path> &paths_out) {
        std::vector<CxTask> swap_tasks;
        swap_tasks.reserve(accepted.size());
        for (size_t i = 0; i < accepted.size(); ++i) {
            const auto &[qa, qb] = accepted[i];
            swap_tasks.push_back(CxTask::make(
                i, placement.cellOf(qa), placement.cellOf(qb)));
        }
        auto outcome = finder_.findPaths(swap_tasks, blocked);
        if (outcome.routed.size() != swap_tasks.size())
            return false;
        paths_out.assign(accepted.size(), Path{});
        for (auto &[idx, path] : outcome.routed)
            paths_out[idx] = std::move(path);
        return true;
    };

    for (size_t safety = 0; safety < entries.size() + 4; ++safety) {
        const auto boxes = boxes_now();

        // Degrees among unused tasks only.
        std::vector<int> degree(entries.size(), 0);
        for (size_t i = 0; i < entries.size(); ++i) {
            if (task_used[i])
                continue;
            for (size_t j = i + 1; j < entries.size(); ++j) {
                if (task_used[j])
                    continue;
                if (boxes[i].intersects(boxes[j])) {
                    ++degree[i];
                    ++degree[j];
                }
            }
        }

        // Most interfering gate A (ties: largest bounding box).
        ssize_t a = -1;
        for (size_t i = 0; i < entries.size(); ++i) {
            if (task_used[i] || degree[i] == 0)
                continue;
            if (a < 0 || degree[i] > degree[static_cast<size_t>(a)] ||
                (degree[i] == degree[static_cast<size_t>(a)] &&
                 boxes[i].area() >
                     boxes[static_cast<size_t>(a)].area()))
                a = static_cast<ssize_t>(i);
        }
        if (a < 0)
            break;

        // B: interferes with A and with the most of the rest.
        ssize_t b = -1;
        for (size_t j = 0; j < entries.size(); ++j) {
            if (task_used[j] || j == static_cast<size_t>(a))
                continue;
            if (!boxes[static_cast<size_t>(a)].intersects(boxes[j]))
                continue;
            if (b < 0 || degree[j] > degree[static_cast<size_t>(b)] ||
                (degree[j] == degree[static_cast<size_t>(b)] &&
                 boxes[j].area() >
                     boxes[static_cast<size_t>(b)].area()))
                b = static_cast<ssize_t>(j);
        }
        if (b < 0) {
            task_used[static_cast<size_t>(a)] = 1;
            continue;
        }

        const Entry &ea = entries[static_cast<size_t>(a)];
        const Entry &eb = entries[static_cast<size_t>(b)];
        const long before = interferenceCount(boxes);

        // Best of the four cross-pair exchanges.
        const std::pair<Qubit, Qubit> combos[4] = {
            {ea.qa, eb.qa}, {ea.qa, eb.qb},
            {ea.qb, eb.qa}, {ea.qb, eb.qb}};
        long best_after = before;
        int best_combo = -1;
        for (int k = 0; k < 4; ++k) {
            const auto [qa, qb] = combos[k];
            std::swap(hcell[static_cast<size_t>(qa)],
                      hcell[static_cast<size_t>(qb)]);
            const long after = interferenceCount(boxes_now());
            std::swap(hcell[static_cast<size_t>(qa)],
                      hcell[static_cast<size_t>(qb)]);
            if (after < best_after) {
                best_after = after;
                best_combo = k;
            }
        }
        if (best_combo < 0) {
            task_used[static_cast<size_t>(a)] = 1;
            continue;
        }

        // Tentatively accept; keep only if the whole set still routes.
        const auto [qa, qb] = combos[best_combo];
        std::swap(hcell[static_cast<size_t>(qa)],
                  hcell[static_cast<size_t>(qb)]);
        accepted.emplace_back(qa, qb);
        std::vector<Path> paths;
        if (route_accepted(paths)) {
            accepted_paths = std::move(paths);
            task_used[static_cast<size_t>(a)] = 1;
            task_used[static_cast<size_t>(b)] = 1;
        } else {
            accepted.pop_back();
            std::swap(hcell[static_cast<size_t>(qa)],
                      hcell[static_cast<size_t>(qb)]);
            task_used[static_cast<size_t>(a)] = 1;
        }
    }

    std::vector<PlannedSwap> plan;
    plan.reserve(accepted.size());
    for (size_t i = 0; i < accepted.size(); ++i)
        plan.push_back(PlannedSwap{accepted[i].first,
                                   accepted[i].second,
                                   std::move(accepted_paths[i])});
    if (!plan.empty())
        AUTOBRAID_COUNT("sched.layout_swaps_planned",
                        static_cast<long long>(plan.size()));
    return plan;
}

} // namespace autobraid

/**
 * @file
 * Compatibility header for the pre-pass-manager pipeline API.
 *
 * The end-to-end pipeline now lives in src/compiler/ as a pass-manager
 * driver (CompileContext + PassManager + the Fig. 10 stages as
 * passes). CompileOptions, CompileReport, compilePipeline(),
 * sweepPThreshold(), and physicalQubits() keep their exact historical
 * names and semantics — include "compiler/driver.hpp" directly in new
 * code, and see docs/pass-manager.md for the pass architecture.
 */

#ifndef AUTOBRAID_SCHED_PIPELINE_HPP
#define AUTOBRAID_SCHED_PIPELINE_HPP

#include "compiler/driver.hpp"

#endif // AUTOBRAID_SCHED_PIPELINE_HPP

/**
 * @file
 * End-to-end compilation pipeline — the library's main entry point.
 *
 * compilePipeline() runs the three AutoBraid stages of Fig. 10:
 * communication-parallelism analysis (DAG + layers), initial placement,
 * and braid scheduling under the chosen policy; for AutobraidFull with
 * an all-to-all coupling pattern it additionally runs the Maslov
 * swap-network mode and keeps the better schedule. The report carries
 * everything the paper's tables and figures need: critical path,
 * makespan, utilization, swap counts, and compile time.
 */

#ifndef AUTOBRAID_SCHED_PIPELINE_HPP
#define AUTOBRAID_SCHED_PIPELINE_HPP

#include <string>
#include <vector>

#include "lattice/surface_code.hpp"
#include "sched/scheduler.hpp"

namespace autobraid {

/** User-facing compilation options. */
struct CompileOptions
{
    SchedulerPolicy policy = SchedulerPolicy::AutobraidFull;
    CostModel cost;
    double p_threshold = 0.3;    ///< layout-optimizer trigger ratio
    bool allow_maslov = true;    ///< try the swap network on all-to-all
    uint64_t seed = 2021;        ///< placement randomness
    bool record_trace = false;   ///< keep a full TraceEntry log

    /**
     * AutobraidFull normally also evaluates the never-trigger (p = 0)
     * schedule and keeps the better one, mirroring the paper's p-sweep.
     * The Fig. 18 sensitivity bench disables this to expose the raw
     * effect of each threshold.
     */
    bool best_of_p0 = true;

    /** Permanently unusable routing vertices (lattice defects). */
    std::vector<VertexId> dead_vertices;

    /** Greedy ordering for the Baseline policy (ablations). */
    GreedyOrder baseline_order = GreedyOrder::Distance;

    /**
     * Channel hold in cycles; 0 = braiding (full CX window), > 0 =
     * teleportation-style early release (see SchedulerConfig).
     */
    Cycles channel_hold_cycles = 0;
    InitialPlacementConfig placement;

    /** Build the scheduler config for this option set. */
    SchedulerConfig schedulerConfig() const;
};

/** Result of one pipeline run. */
struct CompileReport
{
    std::string circuit_name;
    SchedulerPolicy policy = SchedulerPolicy::AutobraidFull;
    int num_qubits = 0;
    size_t num_gates = 0;
    int grid_side = 0;
    Cycles critical_path = 0;    ///< ideal latency (paper's "CP")
    ScheduleResult result;
    bool used_maslov = false;    ///< swap-network mode won
    double placement_seconds = 0;
    double total_seconds = 0;    ///< placement + scheduling wall-clock

    /** Makespan in microseconds. */
    double micros(const CostModel &cost) const
    {
        return cost.micros(result.makespan);
    }

    /** Critical path in microseconds. */
    double cpMicros(const CostModel &cost) const
    {
        return cost.micros(critical_path);
    }

    /** Makespan / critical-path ratio (1.0 = ideal). */
    double cpRatio() const;
};

/** Compile @p circuit under @p options. */
CompileReport compilePipeline(const Circuit &circuit,
                              const CompileOptions &options);

/**
 * The paper's p-sensitivity sweep: compile with AutobraidFull at each
 * threshold in @p thresholds (default 0%..90% in 10% steps) and return
 * one report per value (Fig. 18).
 */
std::vector<std::pair<double, CompileReport>> sweepPThreshold(
    const Circuit &circuit, CompileOptions options,
    const std::vector<double> &thresholds = {});

/** Physical-qubit budget of a report's grid at distance d. */
long physicalQubits(const CompileReport &report,
                    const SurfaceCodeParams &params, int distance);

} // namespace autobraid

#endif // AUTOBRAID_SCHED_PIPELINE_HPP

/**
 * @file
 * Versioned schedule export (format=autobraid-schedule v1).
 *
 * Serializes one ScheduleResult trace — per-gate start/finish window,
 * channel release, routing path or merge-region vertices — together
 * with everything an *independent* checker needs to re-verify it:
 * the gate list, grid dimensions, code distance, backend, channel
 * hold, dead vertices, and (when available) the initial placement.
 * The export is self-contained by design: tools/autobraid_certify
 * consumes it through src/common/json without linking the scheduler.
 * Schema documented in docs/observability.md.
 */

#ifndef AUTOBRAID_SCHED_SCHEDULE_EXPORT_HPP
#define AUTOBRAID_SCHED_SCHEDULE_EXPORT_HPP

#include <string>
#include <vector>

#include "place/placement.hpp"
#include "sched/metrics.hpp"
#include "sched/policy.hpp"

namespace autobraid {

class Circuit;

/** Compilation facts embedded alongside the trace itself. */
struct ScheduleExportInfo
{
    const Circuit *circuit = nullptr; ///< required
    const Grid *grid = nullptr;       ///< required
    SchedulerPolicy policy = SchedulerPolicy::AutobraidFull;
    int distance = 33;                ///< code distance (durations)
    Cycles channel_hold_cycles = 0;   ///< 0 = full-window braiding
    bool used_maslov = false;         ///< swap-network fallback fired
    std::vector<VertexId> dead_vertices;

    /**
     * Initial placement (qubit -> cell id), optional. Embedding it
     * lets the certifier recompute the AB202 channel-capacity lower
     * bound; the bound is only sound for swap-free braiding runs, so
     * the certifier gates on swaps_inserted == 0 && !used_maslov.
     */
    const Placement *placement = nullptr;
};

/**
 * Render @p result as an autobraid-schedule v1 JSON document.
 * Requires a recorded trace (ScheduleResult::trace); the trace may
 * legitimately be empty only for empty circuits.
 */
std::string scheduleToJson(const ScheduleExportInfo &info,
                           const ScheduleResult &result);

} // namespace autobraid

#endif // AUTOBRAID_SCHED_SCHEDULE_EXPORT_HPP

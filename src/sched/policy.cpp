#include "sched/policy.hpp"

#include "common/error.hpp"

namespace autobraid {

const char *
policyName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Baseline: return "GP w. initM";
      case SchedulerPolicy::AutobraidSP: return "autobraid-sp";
      case SchedulerPolicy::AutobraidFull: return "autobraid-full";
    }
    panic("policyName: unknown policy %d", static_cast<int>(policy));
}

const char *
policyCliName(SchedulerPolicy policy)
{
    switch (policy) {
      case SchedulerPolicy::Baseline: return "baseline";
      case SchedulerPolicy::AutobraidSP: return "sp";
      case SchedulerPolicy::AutobraidFull: return "full";
    }
    panic("policyCliName: unknown policy %d",
          static_cast<int>(policy));
}

SchedulerPolicy
parsePolicyName(const std::string &name)
{
    if (name == "baseline")
        return SchedulerPolicy::Baseline;
    if (name == "sp")
        return SchedulerPolicy::AutobraidSP;
    if (name == "full")
        return SchedulerPolicy::AutobraidFull;
    fatal("unknown policy '%s' (valid: baseline, sp, full)",
          name.c_str());
}

InitialPlacementConfig
SchedulerConfig::placementFor(SchedulerPolicy p) const
{
    InitialPlacementConfig cfg = placement;
    if (p == SchedulerPolicy::Baseline) {
        // The baseline keeps METIS-style mapping but has no LLG-aware
        // fine-tuning, no special-case layouts, and no per-tile
        // arrangement inside a partition block.
        cfg.use_annealer = false;
        cfg.use_linear_special = false;
        cfg.partition.leaf_cells = 4;
    }
    return cfg;
}

} // namespace autobraid

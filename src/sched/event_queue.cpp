#include "sched/event_queue.hpp"

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

Cycles
EventQueue::nextTime() const
{
    require(!heap_.empty(), "EventQueue::nextTime on empty queue");
    return heap_.top().time;
}

const std::vector<Event> &
EventQueue::popBatch()
{
    require(!heap_.empty(), "EventQueue::popBatch on empty queue");
    const Cycles t = heap_.top().time;
    batch_.clear();
    while (!heap_.empty() && heap_.top().time == t) {
        batch_.push_back(heap_.top());
        heap_.pop();
    }
    AUTOBRAID_OBSERVE("sched.event_batch",
                      static_cast<double>(batch_.size()));
    return batch_;
}

} // namespace autobraid

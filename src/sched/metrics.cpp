#include "sched/metrics.hpp"

#include "common/text.hpp"

namespace autobraid {

std::string
ScheduleResult::toString(const CostModel &cost) const
{
    return strformat(
        "makespan=%s us (%llu cycles), braids=%zu, swaps=%zu, "
        "util peak=%.0f%% avg=%.0f%%, compile=%.3fs",
        humanMicros(micros(cost)).c_str(),
        static_cast<unsigned long long>(makespan), braids_routed,
        swaps_inserted, 100.0 * peak_utilization,
        100.0 * avg_utilization, compile_seconds);
}

} // namespace autobraid

/**
 * @file
 * Maslov-style linear-depth swap network (paper §3.3.2).
 *
 * For all-to-all communication patterns (QFT, dense QAOA), the paper
 * adopts Maslov's nearest-neighbour construction: qubits live on a line
 * (here: the snake order through the tile grid) and odd-even
 * transposition phases sweep every qubit past every other in linear
 * depth. CX gates execute when their operands become neighbours; each
 * phase's SWAPs act on disjoint adjacent tile pairs, so simultaneous
 * braiding paths always exist. autobraid-full runs this mode alongside
 * the greedy layout optimizer and keeps the better schedule.
 */

#ifndef AUTOBRAID_SCHED_MASLOV_HPP
#define AUTOBRAID_SCHED_MASLOV_HPP

#include <utility>
#include <vector>

#include "place/placement.hpp"

namespace autobraid {

/** The line structure of the swap network over a grid. */
class SwapNetwork
{
  public:
    explicit SwapNetwork(const Grid &grid);

    /** Snake-ordered tiles; qubits occupy a prefix. */
    const std::vector<CellId> &lineCells() const { return line_; }

    /** Line position of tile @p c. */
    int posOf(CellId c) const;

    /** True when two tiles are line neighbours. */
    bool adjacentInLine(CellId a, CellId b) const;

    /**
     * Qubit pairs to swap in one odd-even phase: positions
     * (i, i+1) with i of the given parity where both tiles hold
     * non-excluded qubits.
     *
     * @param parity 0 or 1
     * @param placement current layout
     * @param excluded qubits that may not move this phase
     */
    std::vector<std::pair<Qubit, Qubit>> phasePairs(
        int parity, const Placement &placement,
        const std::vector<uint8_t> &excluded) const;

  private:
    std::vector<CellId> line_;
    std::vector<int> pos_of_;
};

} // namespace autobraid

#endif // AUTOBRAID_SCHED_MASLOV_HPP

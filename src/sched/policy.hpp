/**
 * @file
 * Scheduler policies and configuration.
 *
 * Three policies reproduce the paper's comparison:
 *  - Baseline: the GP greedy scheduler of Javadi-Abhari et al. [10] with
 *    METIS-style initial mapping ("GP w. initM") — static placement,
 *    shortest-distance-first greedy routing;
 *  - AutobraidSP: the stack-based path finder with LLG-aware initial
 *    placement ("autobraid-sp");
 *  - AutobraidFull: AutobraidSP plus the dynamic layout optimizer and the
 *    Maslov swap-network alternative for all-to-all patterns
 *    ("autobraid-full").
 */

#ifndef AUTOBRAID_SCHED_POLICY_HPP
#define AUTOBRAID_SCHED_POLICY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "lattice/cost_model.hpp"
#include "lattice/geometry.hpp"
#include "place/initial.hpp"
#include "route/greedy_finder.hpp"
#include "sched/backend.hpp"

namespace autobraid {

/** Scheduling policy selector. */
enum class SchedulerPolicy : uint8_t
{
    Baseline,
    AutobraidSP,
    AutobraidFull,
};

/** Display name of @p policy. */
const char *policyName(SchedulerPolicy policy);

/** CLI spelling of @p policy (--policy=...). */
const char *policyCliName(SchedulerPolicy policy);

/**
 * Parse a CLI policy name. Raises UserError listing the valid names on
 * anything unrecognized — never silently defaults.
 */
SchedulerPolicy parsePolicyName(const std::string &name);

/** Full scheduler configuration. */
struct SchedulerConfig
{
    SchedulerPolicy policy = SchedulerPolicy::AutobraidFull;

    /**
     * Communication backend. Braiding reserves vertex-disjoint paths;
     * lattice surgery reserves merge regions (src/surgery/). The layout
     * optimizer and the Maslov swap network are braiding-only.
     */
    SchedulerBackend backend = SchedulerBackend::Braiding;

    CostModel cost;

    /**
     * Layout-optimizer trigger (paper's p%): when the fraction of
     * ready CX gates that got a path falls below this, insert SWAPs.
     * Only AutobraidFull uses it.
     */
    double p_threshold = 0.3;

    /** Consider the Maslov swap network for all-to-all patterns. */
    bool allow_maslov = true;

    /** Density above which a coupling graph counts as all-to-all. */
    double all_to_all_density = 0.5;

    /** Seed for placement randomness. */
    uint64_t seed = 2021;

    /**
     * Task ordering used by the Baseline policy's greedy router.
     * Distance is the paper's "GP" (its best policy); Criticality and
     * Program reproduce two more of the original seven for ablations.
     */
    GreedyOrder baseline_order = GreedyOrder::Distance;

    /**
     * Communication-channel hold time. 0 (default) models double-
     * defect *braiding*: a CX's path is occupied for the entire CX
     * window (2d+2 cycles). A positive value models planar-code
     * *teleportation*: the channel only carries EPR distribution for
     * that many cycles, then frees while the CX completes locally —
     * the alternative communication mode of Javadi-Abhari et al. [10]
     * that the paper's conclusion argues against (planar tiles cost
     * ~2x the physical qubits).
     */
    Cycles channel_hold_cycles = 0;

    /**
     * Worker threads for component-parallel routing: independent
     * interference-graph components of one dispatch instant route
     * concurrently in the stack finder. Any value >= 1 produces
     * byte-identical schedules — the component order, per-component
     * routing, and merge are worker-count-independent — so this is
     * purely a wall-clock knob.
     */
    int route_jobs = 1;

    /** Record a full TraceEntry log in the result (tests, debugging). */
    bool record_trace = false;

    /**
     * Record per-gate lifecycle events, stall attribution, and the
     * per-vertex congestion heatmap into ScheduleResult::recording
     * (telemetry/recorder.hpp). Off by default: the dispatch loop's
     * recorder hooks reduce to a null check each.
     */
    bool record_lifecycle = false;

    /**
     * Permanently unusable routing vertices (lattice defects; see
     * lattice/defects.hpp). When non-empty, the baseline policy falls
     * back to all-corner endpoints so a dead NW corner cannot strand a
     * tile.
     */
    std::vector<VertexId> dead_vertices;

    /** Initial-placement pipeline settings. */
    InitialPlacementConfig placement;

    /** Derive the stage-appropriate placement config for a policy. */
    InitialPlacementConfig placementFor(SchedulerPolicy p) const;
};

} // namespace autobraid

#endif // AUTOBRAID_SCHED_POLICY_HPP

#include "sched/schedule_export.hpp"

#include "circuit/circuit.hpp"
#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {

std::string
scheduleToJson(const ScheduleExportInfo &info,
               const ScheduleResult &result)
{
    require(info.circuit != nullptr,
            "scheduleToJson: circuit is required");
    require(info.grid != nullptr, "scheduleToJson: grid is required");
    const Circuit &circuit = *info.circuit;
    const Grid &grid = *info.grid;

    std::string out;
    out.reserve(512 + circuit.size() * 48 +
                result.trace.size() * 96);
    out += "{\n";
    out += "  \"format\": \"autobraid-schedule\",\n";
    out += "  \"version\": 1,\n";
    out += strformat("  \"circuit\": \"%s\",\n",
                     jsonEscape(circuit.name()).c_str());
    out += strformat("  \"policy\": \"%s\",\n",
                     policyName(info.policy));
    out += strformat("  \"backend\": \"%s\",\n",
                     backendCliName(result.backend));
    out += strformat("  \"distance\": %d,\n", info.distance);
    out += strformat("  \"grid_rows\": %d,\n", grid.rows());
    out += strformat("  \"grid_cols\": %d,\n", grid.cols());
    out += strformat("  \"num_qubits\": %d,\n", circuit.numQubits());
    out += strformat(
        "  \"channel_hold_cycles\": %llu,\n",
        static_cast<unsigned long long>(info.channel_hold_cycles));
    out += strformat("  \"used_maslov\": %s,\n",
                     info.used_maslov ? "true" : "false");
    out += strformat(
        "  \"swaps_inserted\": %zu,\n  \"braids_routed\": %zu,\n",
        result.swaps_inserted, result.braids_routed);
    out += strformat("  \"makespan\": %llu,\n",
                     static_cast<unsigned long long>(result.makespan));

    out += "  \"dead_vertices\": [";
    for (size_t i = 0; i < info.dead_vertices.size(); ++i) {
        if (i)
            out += ", ";
        out += strformat("%d", info.dead_vertices[i]);
    }
    out += "],\n";

    if (info.placement) {
        out += "  \"placement\": [";
        for (Qubit q = 0; q < circuit.numQubits(); ++q) {
            if (q)
                out += ", ";
            out += strformat("%d", info.placement->cellIdOf(q));
        }
        out += "],\n";
    }

    out += "  \"gates\": [\n";
    for (size_t g = 0; g < circuit.size(); ++g) {
        const Gate &gate = circuit.gate(g);
        out += strformat("    {\"kind\": \"%s\", \"q0\": %d, "
                         "\"q1\": %d}%s\n",
                         gateName(gate.kind), gate.q0, gate.q1,
                         g + 1 < circuit.size() ? "," : "");
    }
    out += "  ],\n";

    out += "  \"schedule\": [\n";
    for (size_t i = 0; i < result.trace.size(); ++i) {
        const TraceEntry &e = result.trace[i];
        // kNoGate (inserted SWAP) exports as gate -1.
        out += strformat(
            "    {\"gate\": %lld, \"start\": %llu, "
            "\"finish\": %llu, \"release\": %llu",
            e.gate == kNoGate ? -1LL
                              : static_cast<long long>(e.gate),
            static_cast<unsigned long long>(e.start),
            static_cast<unsigned long long>(e.finish),
            static_cast<unsigned long long>(
                e.channel_release > 0 ? e.channel_release
                                      : e.finish));
        if (e.swap_a != kNoQubit || e.swap_b != kNoQubit)
            out += strformat(", \"swap_a\": %d, \"swap_b\": %d",
                             e.swap_a, e.swap_b);
        out += ", \"path\": [";
        for (size_t v = 0; v < e.path.vertices.size(); ++v) {
            if (v)
                out += ", ";
            out += strformat("%d", e.path.vertices[v]);
        }
        out += "]}";
        if (i + 1 < result.trace.size())
            out += ",";
        out += "\n";
    }
    out += "  ]\n";
    out += "}\n";
    return out;
}

} // namespace autobraid

/**
 * @file
 * Shor's-algorithm kernel generator.
 *
 * Substitution (DESIGN.md §7): the scheduling-relevant structure of
 * Beauregard-style Shor — an exponent register driving a window of
 * controlled QFT-basis phase adders into a work register, closed by an
 * inverse QFT. Register split for b bits: exponent b, work b, 3
 * ancillas (2b + 3 qubits; b = 234 reproduces the paper's 471-qubit
 * instance). The adder window is sized so the pre-decomposition gate
 * count lands near the paper's 36.5K.
 */

#ifndef AUTOBRAID_GEN_SHOR_HPP
#define AUTOBRAID_GEN_SHOR_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build the Shor kernel.
 *
 * @param bits modulus width b (>= 2); total qubits = 2b + 3
 * @param adder_rounds controlled phase-adder rounds (default sized to
 *        the paper's gate count at b = 234)
 */
Circuit makeShor(int bits, int adder_rounds = 36);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_SHOR_HPP

/**
 * @file
 * RevLib-style reversible building-block circuits.
 *
 * Substitution for the RevLib circuit files (DESIGN.md §7): the paper's
 * building-block benchmarks (comparators, adders, square root, squarers,
 * unstructured reversible functions) are Toffoli/CNOT/NOT networks over
 * 4-15 qubits. Braid scheduling depends only on the qubit count and the
 * gate-interaction pattern, so each benchmark is regenerated as a
 * deterministic pseudo-random MCT network matching the original's qubit
 * count and (pre-decomposition) gate count; Toffolis are lowered through
 * the standard 6-CX decomposition.
 */

#ifndef AUTOBRAID_GEN_REVLIB_HPP
#define AUTOBRAID_GEN_REVLIB_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/** Catalog entry for one reversible building block. */
struct RevlibEntry
{
    const char *name;        ///< RevLib benchmark name
    const char *description; ///< paper's description column
    int qubits;
    int mct_gates;           ///< paper-reported (MCT-level) gate count
    uint64_t seed;
};

/** The building blocks of the paper's Table 1 / Table 2. */
const std::vector<RevlibEntry> &revlibCatalog();

/** Look up a catalog entry; raises UserError when unknown. */
const RevlibEntry &revlibEntry(const std::string &name);

/** Generate the MCT network for a catalog entry, lowered to the basis. */
Circuit makeRevlib(const std::string &name);

/**
 * Generate a random MCT network directly (tests and ablations).
 *
 * @param qubits register width (>= 3)
 * @param mct_gates number of NOT/CNOT/Toffoli gates before lowering
 * @param seed deterministic instance seed
 */
Circuit makeMctNetwork(int qubits, int mct_gates, uint64_t seed,
                       const std::string &name = "mct");

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_REVLIB_HPP

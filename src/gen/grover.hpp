/**
 * @file
 * Grover search generator.
 *
 * n search qubits, n-2 ancilla qubits for the Toffoli ladder, and the
 * standard structure per iteration: phase oracle marking one basis
 * state (multi-controlled Z via a CCX ladder) followed by the
 * diffusion operator. The ladder concentrates CX traffic on a chain of
 * ancillas — a deep, low-parallelism pattern complementary to
 * QFT/Ising.
 */

#ifndef AUTOBRAID_GEN_GROVER_HPP
#define AUTOBRAID_GEN_GROVER_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build Grover search over @p n search qubits (n >= 3) with
 * @p iterations oracle+diffusion rounds. Total qubits: 2n - 2.
 *
 * @param marked the marked basis state (low n bits used)
 */
Circuit makeGrover(int n, int iterations = 1, uint64_t marked = 0);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_GROVER_HPP

#include "gen/stdlib.hpp"

#include "circuit/peephole.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeGhz(int n, bool fanout_tree)
{
    if (n < 2)
        fatal("makeGhz requires n >= 2, got %d", n);
    Circuit c(n, strformat("ghz%d", n));
    c.h(0);
    if (fanout_tree) {
        // Doubling fan-out: at step k, qubits [0, 2^k) copy into
        // [2^k, 2^(k+1)).
        for (int have = 1; have < n; have *= 2)
            for (int i = 0; i < have && have + i < n; ++i)
                c.cx(i, have + i);
    } else {
        for (Qubit q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
    }
    return c;
}

Circuit
makeRandomCliffordT(int n, int gates, uint64_t seed,
                    double cx_fraction)
{
    if (n < 2)
        fatal("makeRandomCliffordT requires n >= 2, got %d", n);
    if (gates < 1)
        fatal("makeRandomCliffordT requires gates >= 1, got %d",
              gates);
    if (cx_fraction < 0.0 || cx_fraction > 1.0)
        fatal("cx_fraction must be in [0, 1], got %g", cx_fraction);

    Rng rng(seed);
    Circuit c(n, strformat("randct%d", n));

    // Reject draws that cancel with the previous gate on their
    // operands: a random stream otherwise emits adjacent H·H / X·X /
    // CX·CX pairs that are dead work (the gate count must stay exact,
    // so redraw instead of stripping afterwards).
    constexpr GateIdx kNone = static_cast<GateIdx>(-1);
    std::vector<GateIdx> last(static_cast<size_t>(n), kNone);
    auto blocked = [&c, &last](const Gate &g) {
        const GateIdx p0 = last[static_cast<size_t>(g.q0)];
        if (p0 == kNone)
            return false;
        if (g.arity() == 2 && p0 != last[static_cast<size_t>(g.q1)])
            return false;
        return gatesCancel(c.gate(p0), g);
    };
    auto draw = [&rng, n, cx_fraction]() {
        if (rng.chance(cx_fraction)) {
            const auto a = static_cast<Qubit>(
                rng.index(static_cast<size_t>(n)));
            Qubit b;
            do {
                b = static_cast<Qubit>(
                    rng.index(static_cast<size_t>(n)));
            } while (b == a);
            return Gate::twoQubit(GateKind::CX, a, b);
        }
        const auto q =
            static_cast<Qubit>(rng.index(static_cast<size_t>(n)));
        switch (rng.intIn(0, 4)) {
          case 0: return Gate::oneQubit(GateKind::H, q);
          case 1: return Gate::oneQubit(GateKind::S, q);
          case 2: return Gate::oneQubit(GateKind::T, q);
          case 3: return Gate::oneQubit(GateKind::X, q);
          default: return Gate::oneQubit(GateKind::Z, q);
        }
    };

    for (int g = 0; g < gates; ++g) {
        Gate cand = draw();
        for (int attempt = 0; blocked(cand); ++attempt) {
            if (attempt < 8) {
                cand = draw();
                continue;
            }
            // Deterministic unblock: S never cancels (Sdg is not in
            // the gate set) and a flipped CX never cancels the
            // straight one.
            cand = cand.arity() == 1
                       ? Gate::oneQubit(GateKind::S, cand.q0)
                       : Gate::twoQubit(GateKind::CX, cand.q1,
                                        cand.q0);
        }
        const GateIdx idx = c.add(cand);
        last[static_cast<size_t>(cand.q0)] = idx;
        if (cand.arity() == 2)
            last[static_cast<size_t>(cand.q1)] = idx;
    }
    return c;
}

} // namespace gen
} // namespace autobraid

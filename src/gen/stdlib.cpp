#include "gen/stdlib.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeGhz(int n, bool fanout_tree)
{
    if (n < 2)
        fatal("makeGhz requires n >= 2, got %d", n);
    Circuit c(n, strformat("ghz%d", n));
    c.h(0);
    if (fanout_tree) {
        // Doubling fan-out: at step k, qubits [0, 2^k) copy into
        // [2^k, 2^(k+1)).
        for (int have = 1; have < n; have *= 2)
            for (int i = 0; i < have && have + i < n; ++i)
                c.cx(i, have + i);
    } else {
        for (Qubit q = 0; q + 1 < n; ++q)
            c.cx(q, q + 1);
    }
    return c;
}

Circuit
makeRandomCliffordT(int n, int gates, uint64_t seed,
                    double cx_fraction)
{
    if (n < 2)
        fatal("makeRandomCliffordT requires n >= 2, got %d", n);
    if (gates < 1)
        fatal("makeRandomCliffordT requires gates >= 1, got %d",
              gates);
    if (cx_fraction < 0.0 || cx_fraction > 1.0)
        fatal("cx_fraction must be in [0, 1], got %g", cx_fraction);

    Rng rng(seed);
    Circuit c(n, strformat("randct%d", n));
    for (int g = 0; g < gates; ++g) {
        if (rng.chance(cx_fraction)) {
            const auto a = static_cast<Qubit>(
                rng.index(static_cast<size_t>(n)));
            Qubit b;
            do {
                b = static_cast<Qubit>(
                    rng.index(static_cast<size_t>(n)));
            } while (b == a);
            c.cx(a, b);
            continue;
        }
        const auto q =
            static_cast<Qubit>(rng.index(static_cast<size_t>(n)));
        switch (rng.intIn(0, 4)) {
          case 0: c.h(q); break;
          case 1: c.s(q); break;
          case 2: c.t(q); break;
          case 3: c.x(q); break;
          default: c.z(q); break;
        }
    }
    return c;
}

} // namespace gen
} // namespace autobraid

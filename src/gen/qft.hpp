/**
 * @file
 * Quantum Fourier Transform generator.
 *
 * The canonical textbook construction: for each qubit i, an H followed by
 * controlled-phase rotations CP(pi / 2^(j-i)) from every later qubit j.
 * Controlled phases are emitted in the paper's braiding basis (2 CX +
 * 3 RZ each). An optional trailing layer of bit-reversal SWAPs matches
 * Qiskit's `do_swaps=True` variant.
 */

#ifndef AUTOBRAID_GEN_QFT_HPP
#define AUTOBRAID_GEN_QFT_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build an @p n qubit QFT.
 *
 * @param n qubit count (>= 1)
 * @param reverse_swaps append the n/2 bit-reversal SWAPs
 */
Circuit makeQft(int n, bool reverse_swaps = false);

/** Inverse QFT (adjoint ordering, negated angles). */
Circuit makeInverseQft(int n);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_QFT_HPP

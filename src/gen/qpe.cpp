#include "gen/qpe.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeQpe(int counting, int target)
{
    if (counting < 1 || target < 1)
        fatal("makeQpe requires counting >= 1 and target >= 1, got "
              "%d/%d",
              counting, target);
    const int n = counting + target;
    Circuit c(n, strformat("qpe%d", n));

    // Counting register in superposition; target eigenstate prep.
    for (Qubit q = 0; q < counting; ++q)
        c.h(q);
    for (Qubit q = counting; q < n; ++q)
        c.x(q);

    // Controlled U^(2^k): counting qubit k drives a phase cascade on
    // the target register.
    for (Qubit k = 0; k < counting; ++k) {
        const double base =
            std::numbers::pi /
            static_cast<double>(1L << std::min<long>(k, 20));
        for (Qubit t = counting; t < n; ++t)
            c.cphase(k, t, base);
    }

    // Inverse QFT over the counting register.
    for (Qubit i = counting - 1; i >= 0; --i) {
        for (Qubit j = counting - 1; j > i; --j) {
            const double angle =
                -std::numbers::pi /
                static_cast<double>(1L << std::min(j - i, 20));
            c.cphase(j, i, angle);
        }
        c.h(i);
    }
    for (Qubit q = 0; q < counting; ++q)
        c.measure(q);
    return c;
}

} // namespace gen
} // namespace autobraid

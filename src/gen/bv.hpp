/**
 * @file
 * Bernstein-Vazirani generator.
 *
 * n qubits: n-1 data qubits plus one phase ancilla (the last qubit).
 * H on all, a CX from each secret-bit data qubit into the ancilla
 * (serialized on the ancilla — hence no CX parallelism, paper Fig. 6),
 * then H on all. The default all-ones secret reproduces the paper's gate
 * counts (2n + (n-1) gates).
 */

#ifndef AUTOBRAID_GEN_BV_HPP
#define AUTOBRAID_GEN_BV_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/** Build BV over @p n qubits with an all-ones secret. */
Circuit makeBv(int n);

/** Build BV over @p secret.size() + 1 qubits with an explicit secret. */
Circuit makeBv(const std::vector<bool> &secret);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_BV_HPP

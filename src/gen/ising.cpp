#include "gen/ising.hpp"

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeIsing(int n, int steps)
{
    if (n < 2)
        fatal("makeIsing requires n >= 2, got %d", n);
    if (steps < 1)
        fatal("makeIsing requires steps >= 1, got %d", steps);
    Circuit c(n, strformat("im%d", n));
    const double field = 0.3;
    const double zz = 0.7;
    for (int s = 0; s < steps; ++s) {
        for (Qubit q = 0; q < n; ++q)
            c.rz(q, field);
        for (int parity = 0; parity < 2; ++parity) {
            for (Qubit q = parity; q + 1 < n; q += 2) {
                c.cx(q, q + 1);
                c.rz(q + 1, zz);
                c.cx(q, q + 1);
            }
        }
    }
    return c;
}

} // namespace gen
} // namespace autobraid

#include "gen/cc.hpp"

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeCc(int n)
{
    if (n < 2)
        fatal("makeCc requires n >= 2, got %d", n);
    Circuit c(n, strformat("cc%d", n));
    const Qubit ancilla = n - 1;
    for (Qubit q = 0; q < ancilla; ++q)
        c.h(q);
    for (Qubit q = 0; q < ancilla; ++q)
        c.cx(q, ancilla);
    return c;
}

} // namespace gen
} // namespace autobraid

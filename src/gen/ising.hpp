/**
 * @file
 * One-dimensional transverse-field Ising model circuit (Trotterized).
 *
 * Per Trotter step: an RZ field layer on all qubits, then ZZ interactions
 * along the chain — cx(i, i+1); rz(i+1); cx(i, i+1) — applied to the even
 * pairs and then the odd pairs. The even/odd blocks provide ~n/2
 * simultaneous CX gates (paper Fig. 7), making IM the paper's canonical
 * high-communication-parallelism, constant-depth workload.
 */

#ifndef AUTOBRAID_GEN_ISING_HPP
#define AUTOBRAID_GEN_ISING_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build the Ising chain evolution.
 *
 * @param n qubit count (>= 2)
 * @param steps Trotter steps (>= 1)
 */
Circuit makeIsing(int n, int steps = 2);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_ISING_HPP

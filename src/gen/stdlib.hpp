/**
 * @file
 * Small standard circuits: GHZ state preparation and random
 * Clifford+T circuits (the fuzz workload for scheduler stress tests
 * and the micro-benchmarks).
 */

#ifndef AUTOBRAID_GEN_STDLIB_HPP
#define AUTOBRAID_GEN_STDLIB_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * GHZ state over @p n qubits.
 *
 * @param fanout_tree true builds the log-depth CX tree (parallel
 *        braids); false builds the linear CX chain (serial braids).
 */
Circuit makeGhz(int n, bool fanout_tree = false);

/**
 * Random Clifford+T circuit: @p gates gates drawn from
 * {H, S, T, X, Z, CX} with the given two-qubit fraction.
 */
Circuit makeRandomCliffordT(int n, int gates, uint64_t seed,
                            double cx_fraction = 0.4);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_STDLIB_HPP

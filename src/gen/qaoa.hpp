/**
 * @file
 * QAOA MaxCut circuit generator.
 *
 * Random 3-regular MaxCut instances (ring plus a random perfect
 * matching), p rounds. Each round applies the ZZ cost layer over every
 * edge — cx(u, v); rz(v); cx(u, v) — followed by the RX mixer on all
 * qubits. With 8 rounds the gate counts match the paper's QAOA rows
 * (1.5n edges -> 4.5n + n gates per round).
 */

#ifndef AUTOBRAID_GEN_QAOA_HPP
#define AUTOBRAID_GEN_QAOA_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build a QAOA MaxCut circuit on a random geometrically local
 * 3-regular graph: a ring plus a random perfect matching whose pairs
 * stay within @p window ring positions of each other (the paper does
 * not specify its instances; local instances keep the problem
 * embeddable on the tile grid, see DESIGN.md §7).
 *
 * @param n qubit count (even, >= 4)
 * @param rounds QAOA depth p (>= 1)
 * @param seed instance seed (deterministic)
 * @param window matching locality (>= 4; clamped to n)
 */
Circuit makeQaoa(int n, int rounds = 8, uint64_t seed = 7,
                 int window = 16);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_QAOA_HPP

#include "gen/registry.hpp"

#include "common/error.hpp"
#include "common/text.hpp"
#include "gen/adder.hpp"
#include "gen/bv.hpp"
#include "gen/bwt.hpp"
#include "gen/cc.hpp"
#include "gen/grover.hpp"
#include "gen/ising.hpp"
#include "gen/qaoa.hpp"
#include "gen/qft.hpp"
#include "gen/qpe.hpp"
#include "gen/revlib.hpp"
#include "gen/shor.hpp"
#include "gen/stdlib.hpp"
#include "qasm/elaborator.hpp"

namespace autobraid {
namespace gen {
namespace {

int
argAsInt(const std::vector<std::string> &fields, size_t idx,
         int fallback)
{
    if (idx >= fields.size())
        return fallback;
    try {
        return std::stoi(fields[idx]);
    } catch (const std::exception &) {
        fatal("benchmark spec: '%s' is not an integer",
              fields[idx].c_str());
    }
}

} // namespace

Circuit
make(const std::string &spec)
{
    const auto fields = split(spec, ':');
    if (fields.empty())
        fatal("empty benchmark spec");
    const std::string &family = fields[0];

    if (family == "qft") {
        const int n = argAsInt(fields, 1, -1);
        const bool swaps = argAsInt(fields, 2, 0) != 0;
        return makeQft(n, swaps);
    }
    if (family == "bv")
        return makeBv(argAsInt(fields, 1, -1));
    if (family == "cc")
        return makeCc(argAsInt(fields, 1, -1));
    if (family == "im")
        return makeIsing(argAsInt(fields, 1, -1),
                         argAsInt(fields, 2, 2));
    if (family == "qaoa")
        return makeQaoa(argAsInt(fields, 1, -1),
                        argAsInt(fields, 2, 8));
    if (family == "bwt")
        return makeBwt(argAsInt(fields, 1, -1), argAsInt(fields, 2, 1));
    if (family == "shor")
        return makeShor(argAsInt(fields, 1, -1),
                        argAsInt(fields, 2, 36));
    if (family == "qpe")
        return makeQpe(argAsInt(fields, 1, -1),
                       argAsInt(fields, 2, 4));
    if (family == "grover")
        return makeGrover(argAsInt(fields, 1, -1),
                          argAsInt(fields, 2, 1),
                          static_cast<uint64_t>(
                              argAsInt(fields, 3, 0)));
    if (family == "adder")
        return makeAdder(argAsInt(fields, 1, -1));
    if (family == "ghz")
        return makeGhz(argAsInt(fields, 1, -1),
                       argAsInt(fields, 2, 0) != 0);
    if (family == "randct") {
        const int n = argAsInt(fields, 1, -1);
        const int g = argAsInt(fields, 2, -1);
        const int seed = argAsInt(fields, 3, 1);
        return makeRandomCliffordT(n, g,
                                   static_cast<uint64_t>(seed));
    }
    if (family == "revlib") {
        if (fields.size() < 2)
            fatal("revlib spec needs a name, e.g. revlib:urf2_277");
        return makeRevlib(fields[1]);
    }
    if (family == "mct") {
        const int q = argAsInt(fields, 1, -1);
        const int g = argAsInt(fields, 2, -1);
        const int seed = argAsInt(fields, 3, 1);
        return makeMctNetwork(q, g, static_cast<uint64_t>(seed));
    }
    if (family == "qasm") {
        if (fields.size() < 2)
            fatal("qasm spec needs a path, e.g. qasm:foo.qasm");
        return qasm::loadCircuit(fields[1]);
    }
    fatal("unknown benchmark family '%s'", family.c_str());
}

std::vector<std::string>
exampleSpecs()
{
    return {
        "qft:16",   "qft:200",         "bv:100",      "cc:100",
        "im:10",    "im:500",          "qaoa:100",    "bwt:179",
        "shor:234", "revlib:urf2_277", "mct:8:500:1", "qpe:8:4",
        "grover:6", "adder:8",         "ghz:16",      "randct:9:200:1",
    };
}

} // namespace gen
} // namespace autobraid

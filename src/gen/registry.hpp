/**
 * @file
 * Benchmark registry: string specs to circuits.
 *
 * Spec grammar: "family:arg[:arg]" —
 *   qft:N[:swaps]   BV: bv:N    cc:N    im:N[:steps]
 *   qaoa:N[:rounds] bwt:N[:steps]      shor:BITS[:rounds]
 *   revlib:NAME     mct:Q:G:SEED       qasm:PATH
 * The bench harness and the examples address every workload through this
 * single entry point.
 */

#ifndef AUTOBRAID_GEN_REGISTRY_HPP
#define AUTOBRAID_GEN_REGISTRY_HPP

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/** Build the circuit described by @p spec; raises UserError when bad. */
Circuit make(const std::string &spec);

/** Example specs for every supported family (docs and --list output). */
std::vector<std::string> exampleSpecs();

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_REGISTRY_HPP

#include "gen/qaoa.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {
namespace {

/**
 * A random geometrically local 3-regular graph: ring edges give degree
 * 2; a random perfect matching within consecutive ring blocks of
 * @p window vertices adds the third. Edges are emitted colour by colour
 * (even ring, odd ring, matching) so the three ZZ blocks of each round
 * are internally parallel, matching a colouring-aware QAOA transpiler.
 */
std::vector<std::pair<Qubit, Qubit>>
threeRegularEdges(int n, int window, Rng &rng)
{
    std::vector<std::pair<Qubit, Qubit>> edges;
    for (Qubit q = 0; q + 1 < n; q += 2)
        edges.emplace_back(q, q + 1);
    for (Qubit q = 1; q + 1 < n; q += 2)
        edges.emplace_back(q, q + 1);
    edges.emplace_back(n - 1, 0);

    auto ring_adjacent = [n](Qubit a, Qubit b) {
        const int d = std::abs(a - b);
        return d <= 1 || d == n - 1;
    };

    // Per-block random matching avoiding ring edges.
    for (Qubit base = 0; base < n; base += window) {
        const int block = std::min(window, n - base);
        std::vector<Qubit> perm(static_cast<size_t>(block));
        for (int i = 0; i < block; ++i)
            perm[static_cast<size_t>(i)] = base + i;
        for (int attempt = 0; attempt < 1000; ++attempt) {
            rng.shuffle(perm);
            bool ok = true;
            for (size_t i = 0; i + 1 < perm.size(); i += 2) {
                if (ring_adjacent(perm[i], perm[i + 1])) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                break;
            if (attempt == 999)
                fatal("threeRegularEdges: no block matching for n=%d",
                      n);
        }
        for (size_t i = 0; i + 1 < perm.size(); i += 2)
            edges.emplace_back(perm[i], perm[i + 1]);
    }
    return edges;
}

} // namespace

Circuit
makeQaoa(int n, int rounds, uint64_t seed, int window)
{
    if (n < 4 || n % 2 != 0)
        fatal("makeQaoa requires even n >= 4, got %d", n);
    if (rounds < 1)
        fatal("makeQaoa requires rounds >= 1, got %d", rounds);
    if (window < 4)
        fatal("makeQaoa requires window >= 4, got %d", window);
    window = std::min(window, n);
    if (window % 2 != 0)
        --window;

    Rng rng(seed);
    const auto edges = threeRegularEdges(n, window, rng);

    Circuit c(n, strformat("qaoa%d", n));
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (int r = 0; r < rounds; ++r) {
        const double gamma = 0.4 + 0.05 * r;
        const double beta = 0.8 - 0.05 * r;
        for (const auto &[u, v] : edges) {
            c.cx(u, v);
            c.rz(v, gamma);
            c.cx(u, v);
        }
        for (Qubit q = 0; q < n; ++q)
            c.rx(q, beta);
    }
    return c;
}

} // namespace gen
} // namespace autobraid

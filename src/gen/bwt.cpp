#include "gen/bwt.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeBwt(int n, int steps)
{
    if (n < 6)
        fatal("makeBwt requires n >= 6, got %d", n);
    if (steps < 1)
        fatal("makeBwt requires steps >= 1, got %d", steps);

    Circuit c(n, strformat("bwt%d", n));
    const int half = n / 2;

    // Tree A grows from qubit 0 (children of i: 2i+1, 2i+2, while
    // < half); tree B mirrors it from qubit n-1.
    auto tree_a_child = [half](Qubit parent, int which) -> Qubit {
        const Qubit child = 2 * parent + 1 + which;
        return child < half ? child : kNoQubit;
    };
    auto tree_b_child = [n, half](Qubit parent, int which) -> Qubit {
        const Qubit mirrored = n - 1 - parent;
        const Qubit child_m = 2 * mirrored + 1 + which;
        return child_m < n - half ? n - 1 - child_m : kNoQubit;
    };

    c.h(0);
    c.h(n - 1);
    for (int s = 0; s < steps; ++s) {
        for (Qubit p = 0; p < half; ++p) {
            for (int w = 0; w < 2; ++w) {
                const Qubit child = tree_a_child(p, w);
                if (child != kNoQubit) {
                    c.cx(p, child);
                    if ((child & 3) == 1)
                        c.t(child);
                }
            }
        }
        for (Qubit p = 0; p < n - half; ++p) {
            for (int w = 0; w < 2; ++w) {
                const Qubit child = tree_b_child(n - 1 - p, w);
                if (child != kNoQubit) {
                    c.cx(n - 1 - p, child);
                    if ((child & 3) == 2)
                        c.t(child);
                }
            }
        }
        // Weld: leaves of A (the deepest quarter) connect across the
        // middle to leaves of B.
        for (Qubit q = half / 2; q < half; ++q) {
            const Qubit partner = n - 1 - q;
            if (partner > q)
                c.cx(q, partner);
        }
    }
    return c;
}

} // namespace gen
} // namespace autobraid

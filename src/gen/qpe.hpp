/**
 * @file
 * Quantum Phase Estimation generator.
 *
 * QPE is the engine behind Shor's algorithm and quantum simulation (the
 * applications the paper's introduction motivates): a register of
 * counting qubits controls successive powers of a unitary on a target
 * register, followed by an inverse QFT on the counting register. The
 * controlled unitary here is a controlled-RZ cascade (a diagonal
 * Hamiltonian simulation step), which preserves the communication
 * pattern — every counting qubit talks to every target qubit, then the
 * counting register runs an all-to-all iQFT.
 */

#ifndef AUTOBRAID_GEN_QPE_HPP
#define AUTOBRAID_GEN_QPE_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build QPE with @p counting counting qubits and @p target target
 * qubits (total counting + target).
 */
Circuit makeQpe(int counting, int target);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_QPE_HPP

/**
 * @file
 * Cuccaro ripple-carry adder generator.
 *
 * Computes a + b -> b over two w-bit registers with one carry-in and
 * one carry-out qubit (2w + 2 total), using the MAJ/UMA chain. The CX
 * pattern is a strict ripple — nested dependence with nearest-register
 * interaction — the "Bit Adder" style building block of the paper's
 * Table 2.
 */

#ifndef AUTOBRAID_GEN_ADDER_HPP
#define AUTOBRAID_GEN_ADDER_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/** Build a w-bit Cuccaro adder (2w + 2 qubits). */
Circuit makeAdder(int width);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_ADDER_HPP

#include "gen/adder.hpp"

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {
namespace {

void
maj(Circuit &c, Qubit x, Qubit y, Qubit z)
{
    c.cx(z, y);
    c.cx(z, x);
    c.ccx(x, y, z);
}

void
uma(Circuit &c, Qubit x, Qubit y, Qubit z)
{
    c.ccx(x, y, z);
    c.cx(z, x);
    c.cx(x, y);
}

} // namespace

Circuit
makeAdder(int width)
{
    if (width < 1)
        fatal("makeAdder requires width >= 1, got %d", width);
    const int n = 2 * width + 2;
    Circuit c(n, strformat("adder%d", width));
    // Layout: a[0..w), b[w..2w), cin = 2w, cout = 2w + 1.
    const Qubit a0 = 0;
    const Qubit b0 = width;
    const Qubit cin = 2 * width;
    const Qubit cout = 2 * width + 1;

    maj(c, cin, b0, a0);
    for (int i = 1; i < width; ++i)
        maj(c, a0 + i - 1, b0 + i, a0 + i);
    c.cx(a0 + width - 1, cout);
    for (int i = width - 1; i >= 1; --i)
        uma(c, a0 + i - 1, b0 + i, a0 + i);
    uma(c, cin, b0, a0);
    for (int i = 0; i < width; ++i)
        c.measure(b0 + i);
    c.measure(cout);
    return c;
}

} // namespace gen
} // namespace autobraid

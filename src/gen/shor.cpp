#include "gen/shor.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeShor(int bits, int adder_rounds)
{
    if (bits < 2)
        fatal("makeShor requires bits >= 2, got %d", bits);
    if (adder_rounds < 1)
        fatal("makeShor requires adder_rounds >= 1, got %d",
              adder_rounds);

    const int n = 2 * bits + 3;
    Circuit c(n, strformat("shor%d", n));
    const Qubit exp0 = 0;          // exponent register [0, bits)
    const Qubit work0 = bits;      // work register [bits, 2*bits)
    const Qubit anc0 = 2 * bits;   // 3 ancillas

    // Superpose the exponent register.
    for (Qubit q = 0; q < bits; ++q)
        c.h(exp0 + q);
    // Work register into the Fourier basis.
    for (Qubit q = 0; q < bits; ++q)
        c.h(work0 + q);

    // Window of controlled phase adders: exponent bit k (round-robin)
    // drives rotations into every work qubit.
    for (int round = 0; round < adder_rounds; ++round) {
        const Qubit ctrl = exp0 + (round % bits);
        for (Qubit j = 0; j < bits; ++j) {
            const double angle =
                std::numbers::pi /
                static_cast<double>(1L << ((j + round) % 20));
            c.cphase(ctrl, work0 + j, angle);
        }
        // Carry interaction with the ancillas (comparator sketch).
        c.cx(work0 + bits - 1, anc0);
        c.cx(anc0, anc0 + 1);
        c.cx(anc0 + 1, anc0 + 2);
    }

    // Inverse QFT over the work register.
    for (Qubit i = bits - 1; i >= 0; --i) {
        for (Qubit j = bits - 1; j > i; --j) {
            const double angle =
                -std::numbers::pi /
                static_cast<double>(1L << std::min(j - i, 20));
            c.cphase(work0 + j, work0 + i, angle);
        }
        c.h(work0 + i);
    }
    return c;
}

} // namespace gen
} // namespace autobraid

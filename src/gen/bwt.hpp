/**
 * @file
 * Binary-Welded-Tree (BWT) walk circuit.
 *
 * Substitution for the Ghosh et al. BWT oracle (DESIGN.md §7): two
 * complete binary trees facing each other over the qubit range, welded
 * in the middle. Each walk step applies CX along every tree edge level
 * by level (plus sparse T gates), then CX across the weld. The braiding
 * workload — tree-local CX parallelism with a narrow weld bottleneck —
 * matches the paper's BWT behaviour (modest speedups ~1.3-1.4x).
 */

#ifndef AUTOBRAID_GEN_BWT_HPP
#define AUTOBRAID_GEN_BWT_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/**
 * Build the welded-tree walk.
 *
 * @param n qubit count (>= 6)
 * @param steps walk steps (>= 1)
 */
Circuit makeBwt(int n, int steps = 1);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_BWT_HPP

#include "gen/revlib.hpp"

#include "circuit/peephole.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace autobraid {
namespace gen {

const std::vector<RevlibEntry> &
revlibCatalog()
{
    static const std::vector<RevlibEntry> catalog = {
        {"4gt11_8", "Compare", 5, 20, 11},
        {"4gt5_75", "Input", 5, 48, 75},
        {"alu-v0_26", "ALU by Gupta", 5, 48, 26},
        {"rd32-v0", "Bit Adder", 4, 34, 32},
        {"sqrt8_260", "Square Root", 12, 3090, 260},
        {"squar5_261", "Squarer", 13, 1110, 261},
        {"squar7", "Squarer", 15, 4070, 7},
        {"urf1_278", "Unstructured Reversible Function", 9, 54800, 278},
        {"urf2_277", "Unstructured Reversible Function", 8, 20100, 277},
        {"urf5_158", "Unstructured Reversible Function", 9, 160000, 158},
        {"urf5_280", "Unstructured Reversible Function", 9, 49800, 280},
    };
    return catalog;
}

const RevlibEntry &
revlibEntry(const std::string &name)
{
    for (const RevlibEntry &e : revlibCatalog())
        if (name == e.name)
            return e;
    fatal("unknown RevLib benchmark '%s'", name.c_str());
}

Circuit
makeRevlib(const std::string &name)
{
    const RevlibEntry &e = revlibEntry(name);
    return makeMctNetwork(e.qubits, e.mct_gates, e.seed, e.name);
}

Circuit
makeMctNetwork(int qubits, int mct_gates, uint64_t seed,
               const std::string &name)
{
    if (qubits < 3)
        fatal("makeMctNetwork requires qubits >= 3, got %d", qubits);
    if (mct_gates < 1)
        fatal("makeMctNetwork requires mct_gates >= 1, got %d",
              mct_gates);

    Rng rng(seed);
    Circuit c(qubits, name);
    for (int g = 0; g < mct_gates; ++g) {
        const double kind = rng.uniform();
        const auto t = static_cast<Qubit>(rng.index(
            static_cast<size_t>(qubits)));
        if (kind < 0.15) {
            c.x(t);
            continue;
        }
        Qubit a;
        do {
            a = static_cast<Qubit>(rng.index(
                static_cast<size_t>(qubits)));
        } while (a == t);
        if (kind < 0.60) {
            c.cx(a, t);
            continue;
        }
        Qubit b;
        do {
            b = static_cast<Qubit>(rng.index(
                static_cast<size_t>(qubits)));
        } while (b == t || b == a);
        c.ccx(a, b, t);
    }
    // Adjacent MCT gates on shared targets leave cancelling pairs
    // (the Toffoli network conjugates its target by H, and random
    // X/CX draws can repeat); strip the dead work.
    return cancelAdjacentPairs(c).circuit;
}

} // namespace gen
} // namespace autobraid

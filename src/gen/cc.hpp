/**
 * @file
 * Counterfeit-coin finding generator.
 *
 * The balance-query core of the counterfeit-coin algorithm: H on each of
 * the n-1 coin qubits, then a CX from every coin qubit into the shared
 * balance ancilla. Like BV, the ancilla serializes every CX, so the
 * circuit has no communication parallelism; the paper uses it to show
 * near-baseline-parity cases.
 */

#ifndef AUTOBRAID_GEN_CC_HPP
#define AUTOBRAID_GEN_CC_HPP

#include "circuit/circuit.hpp"

namespace autobraid {
namespace gen {

/** Build the counterfeit-coin query over @p n qubits. */
Circuit makeCc(int n);

} // namespace gen
} // namespace autobraid

#endif // AUTOBRAID_GEN_CC_HPP

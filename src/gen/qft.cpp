#include "gen/qft.hpp"

#include <numbers>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeQft(int n, bool reverse_swaps)
{
    if (n < 1)
        fatal("makeQft requires n >= 1, got %d", n);
    Circuit c(n, strformat("qft%d", n));
    for (Qubit i = 0; i < n; ++i) {
        c.h(i);
        for (Qubit j = i + 1; j < n; ++j) {
            const double angle =
                std::numbers::pi / static_cast<double>(1L << (j - i));
            c.cphase(j, i, angle);
        }
    }
    if (reverse_swaps)
        for (Qubit i = 0; i < n / 2; ++i)
            c.swap(i, n - 1 - i);
    return c;
}

Circuit
makeInverseQft(int n)
{
    if (n < 1)
        fatal("makeInverseQft requires n >= 1, got %d", n);
    Circuit c(n, strformat("iqft%d", n));
    for (Qubit i = n - 1; i >= 0; --i) {
        for (Qubit j = n - 1; j > i; --j) {
            const double angle =
                -std::numbers::pi / static_cast<double>(1L << (j - i));
            c.cphase(j, i, angle);
        }
        c.h(i);
    }
    return c;
}

} // namespace gen
} // namespace autobraid

#include "gen/grover.hpp"

#include "circuit/peephole.hpp"
#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {
namespace {

/**
 * Multi-controlled Z on @p controls plus @p last, using the ancilla
 * chain starting at @p anc0: the standard CCX ladder computes the AND
 * of the controls into the last ancilla, a CZ applies the phase, and
 * the ladder uncomputes.
 */
void
mcz(Circuit &c, int num_controls, Qubit last, Qubit anc0)
{
    if (num_controls == 1) {
        c.cz(0, last);
        return;
    }
    c.ccx(0, 1, anc0);
    for (int k = 2; k < num_controls; ++k)
        c.ccx(k, anc0 + k - 2, anc0 + k - 1);
    c.cz(anc0 + num_controls - 2, last);
    for (int k = num_controls - 1; k >= 2; --k)
        c.ccx(k, anc0 + k - 2, anc0 + k - 1);
    c.ccx(0, 1, anc0);
}

} // namespace

Circuit
makeGrover(int n, int iterations, uint64_t marked)
{
    if (n < 3)
        fatal("makeGrover requires n >= 3, got %d", n);
    if (iterations < 1)
        fatal("makeGrover requires iterations >= 1, got %d",
              iterations);
    const int total = 2 * n - 2; // n search + (n - 2) ancillas
    Circuit c(total, strformat("grover%d", n));
    const Qubit anc0 = n;

    for (Qubit q = 0; q < n; ++q)
        c.h(q);

    for (int it = 0; it < iterations; ++it) {
        // Oracle: flip phase of |marked>.
        for (Qubit q = 0; q < n; ++q)
            if (!((marked >> q) & 1))
                c.x(q);
        mcz(c, n - 1, n - 1, anc0);
        for (Qubit q = 0; q < n; ++q)
            if (!((marked >> q) & 1))
                c.x(q);

        // Diffusion: H X (MCZ) X H.
        for (Qubit q = 0; q < n; ++q) {
            c.h(q);
            c.x(q);
        }
        mcz(c, n - 1, n - 1, anc0);
        for (Qubit q = 0; q < n; ++q) {
            c.x(q);
            c.h(q);
        }
    }
    for (Qubit q = 0; q < n; ++q)
        c.measure(q);
    // The Toffoli network conjugates its target by H, so consecutive
    // MCZ ladders leave cancelling H·H pairs on the ancillas; strip
    // that dead work instead of scheduling it.
    return cancelAdjacentPairs(c).circuit;
}

} // namespace gen
} // namespace autobraid

#include "gen/bv.hpp"

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace gen {

Circuit
makeBv(int n)
{
    if (n < 2)
        fatal("makeBv requires n >= 2, got %d", n);
    return makeBv(std::vector<bool>(static_cast<size_t>(n - 1), true));
}

Circuit
makeBv(const std::vector<bool> &secret)
{
    const int n = static_cast<int>(secret.size()) + 1;
    if (secret.empty())
        fatal("makeBv requires a non-empty secret");
    Circuit c(n, strformat("bv%d", n));
    const Qubit ancilla = n - 1;
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (Qubit q = 0; q < ancilla; ++q)
        if (secret[static_cast<size_t>(q)])
            c.cx(q, ancilla);
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    return c;
}

} // namespace gen
} // namespace autobraid

#include "common/rng.hpp"

#include "common/error.hpp"

namespace autobraid {

int
Rng::intIn(int lo, int hi)
{
    require(lo <= hi, "Rng::intIn: empty range");
    std::uniform_int_distribution<int> dist(lo, hi);
    return dist(engine_);
}

size_t
Rng::index(size_t n)
{
    require(n > 0, "Rng::index: empty range");
    std::uniform_int_distribution<size_t> dist(0, n - 1);
    return dist(engine_);
}

double
Rng::uniform()
{
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

} // namespace autobraid

#include "common/parse.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace autobraid {

namespace {

[[noreturn]] void
reject(const std::string &text, const char *flag, const char *expect)
{
    throw UserError("invalid value '" + text + "' for " + flag +
                    " (expected " + expect + ")");
}

/**
 * True when the token parsed cleanly end-to-end: non-empty, no
 * leading whitespace (strtol would silently skip it), and the
 * conversion consumed every character.
 */
bool
cleanToken(const std::string &text, const char *end)
{
    return !text.empty() && !std::isspace(static_cast<unsigned char>(text[0])) &&
           end == text.c_str() + text.size();
}

} // namespace

long long
parseCheckedInt(const std::string &text, const char *flag,
                long long min, long long max)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text.c_str(), &end, 10);
    if (!cleanToken(text, end) || end == text.c_str())
        reject(text, flag, "a decimal integer");
    if (errno == ERANGE || value < min || value > max) {
        const std::string range = "an integer in [" +
                                  std::to_string(min) + ", " +
                                  std::to_string(max) + "]";
        reject(text, flag, range.c_str());
    }
    return value;
}

int
parseCheckedIntFlag(const std::string &text, const char *flag, int min,
                    int max)
{
    return static_cast<int>(parseCheckedInt(text, flag, min, max));
}

uint64_t
parseCheckedUInt(const std::string &text, const char *flag,
                 uint64_t max)
{
    // strtoull wraps "-1" to UINT64_MAX instead of failing; reject any
    // sign up front so out-of-range negatives cannot sneak through.
    if (!text.empty() && (text[0] == '-' || text[0] == '+'))
        reject(text, flag, "an unsigned decimal integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (!cleanToken(text, end) || end == text.c_str())
        reject(text, flag, "an unsigned decimal integer");
    if (errno == ERANGE || value > max) {
        const std::string range =
            "an unsigned integer <= " + std::to_string(max);
        reject(text, flag, range.c_str());
    }
    return value;
}

double
parseCheckedDouble(const std::string &text, const char *flag,
                   double min, double max)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (!cleanToken(text, end) || end == text.c_str())
        reject(text, flag, "a number");
    if (errno == ERANGE || !std::isfinite(value) || value < min ||
        value > max) {
        const std::string range = "a finite number in [" +
                                  std::to_string(min) + ", " +
                                  std::to_string(max) + "]";
        reject(text, flag, range.c_str());
    }
    return value;
}

} // namespace autobraid

#include "common/json.hpp"

#include <cmath>
#include <cstdlib>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {
namespace json {

namespace {

const char *
kindName(Value::Kind kind)
{
    switch (kind) {
    case Value::Kind::Null:
        return "null";
    case Value::Kind::Bool:
        return "bool";
    case Value::Kind::Number:
        return "number";
    case Value::Kind::String:
        return "string";
    case Value::Kind::Array:
        return "array";
    case Value::Kind::Object:
        return "object";
    }
    return "unknown";
}

/** Recursive-descent parser over the whole input string. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value parseDocument()
    {
        skipWs();
        Value v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after JSON value");
        return v;
    }

  private:
    // Containers may nest at most this deep; recursive descent means
    // unbounded input depth would otherwise exhaust the stack.
    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0;

    [[noreturn]] void fail(const char *what)
    {
        size_t line = 1;
        size_t col = 1;
        for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("JSON parse error at line %zu column %zu (byte %zu): "
              "%s",
              line, col, pos_, what);
    }

    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void skipWs()
    {
        while (!eof()) {
            const char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++pos_;
            else
                break;
        }
    }

    void expect(char c)
    {
        if (eof() || peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool consumeWord(const char *word)
    {
        size_t len = 0;
        while (word[len])
            ++len;
        if (text_.compare(pos_, len, word) != 0)
            return false;
        pos_ += len;
        return true;
    }

    Value parseValue()
    {
        if (eof())
            fail("unexpected end of input");
        switch (peek()) {
        case '{': {
            if (++depth_ > kMaxDepth)
                fail("nesting depth exceeds 64");
            Value v = parseObject();
            --depth_;
            return v;
        }
        case '[': {
            if (++depth_ > kMaxDepth)
                fail("nesting depth exceeds 64");
            Value v = parseArray();
            --depth_;
            return v;
        }
        case '"':
            return Value(parseString());
        case 't':
            if (!consumeWord("true"))
                fail("invalid literal");
            return Value(true);
        case 'f':
            if (!consumeWord("false"))
                fail("invalid literal");
            return Value(false);
        case 'n':
            if (!consumeWord("null"))
                fail("invalid literal");
            return Value();
        default:
            return parseNumber();
        }
    }

    Value parseObject()
    {
        expect('{');
        Object members;
        skipWs();
        if (!eof() && peek() == '}') {
            ++pos_;
            return Value(std::move(members));
        }
        for (;;) {
            skipWs();
            if (eof() || peek() != '"')
                fail("expected object key");
            std::string key = parseString();
            skipWs();
            expect(':');
            skipWs();
            members[std::move(key)] = parseValue();
            skipWs();
            if (eof())
                fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value(std::move(members));
        }
    }

    Value parseArray()
    {
        expect('[');
        Array items;
        skipWs();
        if (!eof() && peek() == ']') {
            ++pos_;
            return Value(std::move(items));
        }
        for (;;) {
            skipWs();
            items.push_back(parseValue());
            skipWs();
            if (eof())
                fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value(std::move(items));
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (eof())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (eof())
                fail("unterminated escape");
            c = text_[pos_++];
            switch (c) {
            case '"':
            case '\\':
            case '/':
                out += c;
                break;
            case 'b':
                out += '\b';
                break;
            case 'f':
                out += '\f';
                break;
            case 'n':
                out += '\n';
                break;
            case 'r':
                out += '\r';
                break;
            case 't':
                out += '\t';
                break;
            case 'u': {
                unsigned code = readHex4();
                if (code >= 0xDC00 && code <= 0xDFFF)
                    fail("lone low surrogate in \\u escape");
                if (code >= 0xD800 && code <= 0xDBFF) {
                    // A high surrogate is only valid when paired with
                    // an immediately following \u low surrogate.
                    if (pos_ + 1 >= text_.size() ||
                        text_[pos_] != '\\' || text_[pos_ + 1] != 'u')
                        fail("lone high surrogate in \\u escape");
                    pos_ += 2;
                    const unsigned lo = readHex4();
                    if (lo < 0xDC00 || lo > 0xDFFF)
                        fail("high surrogate not followed by low "
                             "surrogate in \\u escape");
                    code = 0x10000 + ((code - 0xD800) << 10) +
                           (lo - 0xDC00);
                }
                // UTF-8 encode; our exporters only emit \u00XX
                // control escapes, but accept the full code-point
                // range including supplementary-plane pairs.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else if (code < 0x10000) {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xF0 | (code >> 18));
                    out += static_cast<char>(0x80 |
                                             ((code >> 12) & 0x3F));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default:
                fail("invalid escape character");
            }
        }
    }

    unsigned readHex4()
    {
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            if (eof())
                fail("truncated \\u escape");
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                fail("invalid \\u escape");
        }
        return code;
    }

    Value parseNumber()
    {
        const size_t start = pos_;
        if (!eof() && peek() == '-')
            ++pos_;
        while (!eof()) {
            const char c = peek();
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-')
                ++pos_;
            else
                break;
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            fail("malformed number");
        // JSON has no NaN/Infinity; also reject finite-looking
        // tokens that overflow to infinity (e.g. 1e999).
        if (!std::isfinite(v))
            fail("number is not finite");
        return Value(v);
    }
};

} // namespace

bool
Value::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("JSON value is %s, expected bool", kindName(kind_));
    return bool_;
}

double
Value::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("JSON value is %s, expected number", kindName(kind_));
    return num_;
}

const std::string &
Value::asString() const
{
    if (kind_ != Kind::String)
        fatal("JSON value is %s, expected string", kindName(kind_));
    return str_;
}

const Array &
Value::asArray() const
{
    if (kind_ != Kind::Array)
        fatal("JSON value is %s, expected array", kindName(kind_));
    return *arr_;
}

const Object &
Value::asObject() const
{
    if (kind_ != Kind::Object)
        fatal("JSON value is %s, expected object", kindName(kind_));
    return *obj_;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    const auto it = obj_->find(key);
    return it == obj_->end() ? nullptr : &it->second;
}

double
Value::numberOr(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return (v && v->isNumber()) ? v->asNumber() : fallback;
}

std::string
Value::stringOr(const std::string &key,
                const std::string &fallback) const
{
    const Value *v = find(key);
    return (v && v->isString()) ? v->asString() : fallback;
}

Value
parse(const std::string &text)
{
    Parser parser(text);
    return parser.parseDocument();
}

Value
parseFile(const std::string &path)
{
    return parse(readTextFile(path));
}

} // namespace json
} // namespace autobraid

#include "common/stats.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/text.hpp"

namespace autobraid {

void
Accumulator::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++count_;
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
    count_ += other.count_;
}

double
Accumulator::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Accumulator::min() const
{
    require(count_ > 0, "Accumulator::min on empty accumulator");
    return min_;
}

double
Accumulator::max() const
{
    require(count_ > 0, "Accumulator::max on empty accumulator");
    return max_;
}

Histogram::Histogram(size_t num_bins) : bins_(num_bins + 1, 0)
{
    require(num_bins > 0, "Histogram requires at least one bin");
}

void
Histogram::add(int64_t value)
{
    size_t b = 0;
    if (value > 0)
        b = std::min(static_cast<size_t>(value), bins_.size() - 1);
    ++bins_[b];
    ++total_;
}

uint64_t
Histogram::bin(size_t b) const
{
    require(b < bins_.size(), "Histogram::bin out of range");
    return bins_[b];
}

std::string
Histogram::toString() const
{
    std::string out;
    for (size_t b = 0; b < bins_.size(); ++b) {
        if (bins_[b] == 0)
            continue;
        if (!out.empty())
            out += " ";
        out += strformat("%zu:%llu", b,
                         static_cast<unsigned long long>(bins_[b]));
    }
    return out;
}

} // namespace autobraid

/**
 * @file
 * Lightweight statistics accumulators used by the scheduler metrics and the
 * benchmark harness (running mean / min / max / sum, and a fixed-width
 * histogram for distributions such as LLG sizes and path lengths).
 */

#ifndef AUTOBRAID_COMMON_STATS_HPP
#define AUTOBRAID_COMMON_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace autobraid {

/** Streaming accumulator for scalar samples. */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator &other);

    /** Number of samples added. */
    size_t count() const { return count_; }

    /** Sum of all samples (0 when empty). */
    double sum() const { return sum_; }

    /** Mean of all samples (0 when empty). */
    double mean() const;

    /** Smallest sample. Raises InternalError when empty. */
    double min() const;

    /** Largest sample. Raises InternalError when empty. */
    double max() const;

  private:
    size_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Integer histogram with unit-width bins [0, capacity). */
class Histogram
{
  public:
    /** @param num_bins values >= num_bins land in the overflow bin. */
    explicit Histogram(size_t num_bins);

    /** Record one integer sample (negative values clamp to bin 0). */
    void add(int64_t value);

    /** Count in bin @p b; the overflow bin is index numBins(). */
    uint64_t bin(size_t b) const;

    /** Number of regular (non-overflow) bins. */
    size_t numBins() const { return bins_.size() - 1; }

    /** Total samples recorded. */
    uint64_t total() const { return total_; }

    /** Render as "bin:count" pairs, skipping empty bins. */
    std::string toString() const;

  private:
    std::vector<uint64_t> bins_;
    uint64_t total_ = 0;
};

} // namespace autobraid

#endif // AUTOBRAID_COMMON_STATS_HPP

/**
 * @file
 * Checked numeric parsing for command-line values.
 *
 * The raw std::stoi/std::stoull family throws std::invalid_argument /
 * std::out_of_range on garbage or overflow, which every tool used to
 * let escape as an uncaught abort ("--jobs=abc" took the whole
 * process down). These helpers instead validate the complete token —
 * no empty strings, no trailing junk, no silent wraparound — and
 * raise UserError with the offending flag name, so tools can report
 * "invalid value" and exit 2 per the shared exit-code convention.
 */

#ifndef AUTOBRAID_COMMON_PARSE_HPP
#define AUTOBRAID_COMMON_PARSE_HPP

#include <cstdint>
#include <limits>
#include <string>

namespace autobraid {

/**
 * Parse @p text as a decimal integer in [@p min, @p max]. Raises
 * UserError naming @p flag when the token is empty, contains trailing
 * junk, or falls outside the range.
 */
long long parseCheckedInt(
    const std::string &text, const char *flag,
    long long min = std::numeric_limits<long long>::min(),
    long long max = std::numeric_limits<long long>::max());

/** parseCheckedInt() narrowed to int for the common flag case. */
int parseCheckedIntFlag(const std::string &text, const char *flag,
                        int min, int max);

/**
 * Parse @p text as an unsigned decimal integer <= @p max. Unlike
 * std::stoull, a leading '-' is rejected rather than wrapped around.
 */
uint64_t parseCheckedUInt(
    const std::string &text, const char *flag,
    uint64_t max = std::numeric_limits<uint64_t>::max());

/**
 * Parse @p text as a finite double in [@p min, @p max]. "inf"/"nan"
 * spellings are rejected along with garbage and trailing junk.
 */
double parseCheckedDouble(
    const std::string &text, const char *flag,
    double min = std::numeric_limits<double>::lowest(),
    double max = std::numeric_limits<double>::max());

} // namespace autobraid

#endif // AUTOBRAID_COMMON_PARSE_HPP

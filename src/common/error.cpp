#include "common/error.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace autobraid {
namespace {

/** Expand a printf-style format into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw UserError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    throw InternalError(msg);
}

void
require(bool cond, const char *msg)
{
    if (!cond)
        throw InternalError(msg);
}

} // namespace autobraid

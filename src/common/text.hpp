/**
 * @file
 * Small string helpers: printf-style formatting into std::string, trimming,
 * splitting, and human-readable quantity rendering used by the report
 * printers in the benchmark harness.
 */

#ifndef AUTOBRAID_COMMON_TEXT_HPP
#define AUTOBRAID_COMMON_TEXT_HPP

#include <string>
#include <vector>

namespace autobraid {

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string &s);

/** Split @p s on @p sep, dropping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** True when @p s starts with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/**
 * Render a quantity the way the paper's tables do: "950", "1.28K",
 * "3.63M". Values < 1000 print as integers; larger values use K/M/G with
 * up to three significant digits.
 */
std::string humanQuantity(double value);

/**
 * Render a duration given in microseconds using the paper's table style,
 * e.g. "745", "1.28K", "149K", "3.63M" (all in microseconds).
 */
std::string humanMicros(double micros);

/**
 * Escape a string for inclusion in a JSON document (quotes,
 * backslashes, and control characters).
 */
std::string jsonEscape(const std::string &s);

/**
 * Write @p content to @p path, replacing any existing file. Raises
 * UserError when the file cannot be opened or fully written.
 */
void writeTextFile(const std::string &path, const std::string &content);

/**
 * Read the entire file at @p path into a string. Raises UserError
 * when the file cannot be opened or read.
 */
std::string readTextFile(const std::string &path);

} // namespace autobraid

#endif // AUTOBRAID_COMMON_TEXT_HPP

#include "common/text.hpp"

#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "common/error.hpp"

namespace autobraid {

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0) {
        va_end(args);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    va_end(args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
trim(const std::string &s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> fields;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            if (!cur.empty())
                fields.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        fields.push_back(cur);
    return fields;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

namespace {

/** Print with up to three significant digits, dropping trailing zeros. */
std::string
sigDigits(double v)
{
    std::string s;
    if (v >= 100.0)
        s = strformat("%.0f", v);
    else if (v >= 10.0)
        s = strformat("%.1f", v);
    else
        s = strformat("%.2f", v);
    // Drop a trailing ".0" / ".00" style fraction.
    const size_t dot = s.find('.');
    if (dot != std::string::npos) {
        size_t last = s.find_last_not_of('0');
        if (last == dot)
            --last;
        s.erase(last + 1);
    }
    return s;
}

} // namespace

std::string
humanQuantity(double value)
{
    const double v = std::fabs(value);
    const char *sign = value < 0 ? "-" : "";
    if (v < 1000.0)
        return strformat("%s%.0f", sign, v);
    if (v < 1e6)
        return std::string(sign) + sigDigits(v / 1e3) + "K";
    if (v < 1e9)
        return std::string(sign) + sigDigits(v / 1e6) + "M";
    return std::string(sign) + sigDigits(v / 1e9) + "G";
}

std::string
humanMicros(double micros)
{
    return humanQuantity(micros);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strformat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

void
writeTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    const size_t written =
        std::fwrite(content.data(), 1, content.size(), f);
    const bool closed = std::fclose(f) == 0;
    if (written != content.size() || !closed)
        fatal("short write to '%s'", path.c_str());
}

std::string
readTextFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open '%s' for reading", path.c_str());
    std::string content;
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, got);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        fatal("read error on '%s'", path.c_str());
    return content;
}

} // namespace autobraid

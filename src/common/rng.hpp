/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components (simulated annealing, random benchmark
 * instances, property tests) draw from an explicitly seeded Rng so that
 * every experiment in the paper-reproduction harness is repeatable.
 */

#ifndef AUTOBRAID_COMMON_RNG_HPP
#define AUTOBRAID_COMMON_RNG_HPP

#include <cstdint>
#include <random>
#include <vector>

namespace autobraid {

/** A seeded Mersenne-Twister wrapper with convenience samplers. */
class Rng
{
  public:
    /** Construct with an explicit seed (default fixed for repeatability). */
    explicit Rng(uint64_t seed = 0x5eed'ab1d'2021ULL) : engine_(seed) {}

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int intIn(int lo, int hi);

    /** Uniform size_t in [0, n-1]. Requires n > 0. */
    size_t index(size_t n);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[index(i)]);
    }

    /** Access the underlying engine (for std::distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace autobraid

#endif // AUTOBRAID_COMMON_RNG_HPP

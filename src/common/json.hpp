/**
 * @file
 * Minimal JSON reader for the inspection tooling.
 *
 * The repo's exporters all hand-serialize JSON (viz/json.cpp,
 * telemetry/metrics.cpp, telemetry/recorder.cpp); this is the matching
 * *reader*, used by tools/autobraid_inspect to load recordings and
 * metrics documents back in. It parses strict JSON into a small value
 * tree — no streaming, no comments, no trailing commas — which is all
 * the self-produced documents need. Parse errors raise UserError with
 * a line/column position.
 */

#ifndef AUTOBRAID_COMMON_JSON_HPP
#define AUTOBRAID_COMMON_JSON_HPP

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace autobraid {
namespace json {

class Value;
using Array = std::vector<Value>;
/** std::map keeps key iteration deterministic for re-serialization. */
using Object = std::map<std::string, Value>;

/** One JSON value; a tree of these represents a parsed document. */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    explicit Value(double d) : kind_(Kind::Number), num_(d) {}
    explicit Value(std::string s)
        : kind_(Kind::String), str_(std::move(s))
    {
    }
    explicit Value(Array a)
        : kind_(Kind::Array),
          arr_(std::make_shared<Array>(std::move(a)))
    {
    }
    explicit Value(Object o)
        : kind_(Kind::Object),
          obj_(std::make_shared<Object>(std::move(o)))
    {
    }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; raise UserError on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const Array &asArray() const;
    const Object &asObject() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Member as number/string with a fallback when absent. */
    double numberOr(const std::string &key, double fallback) const;
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;

  private:
    Kind kind_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    // Shared so Values stay cheap to copy; parsed trees are read-only.
    std::shared_ptr<Array> arr_;
    std::shared_ptr<Object> obj_;
};

/** Parse @p text as one JSON document; UserError on malformed input. */
Value parse(const std::string &text);

/** Read and parse @p path; UserError on IO or parse failure. */
Value parseFile(const std::string &path);

} // namespace json
} // namespace autobraid

#endif // AUTOBRAID_COMMON_JSON_HPP

/**
 * @file
 * Error-handling primitives shared by every AutoBraid subsystem.
 *
 * Two failure categories are distinguished, following the gem5 convention:
 *  - fatal conditions are the *user's* fault (bad input circuit, malformed
 *    QASM, impossible configuration) and raise UserError;
 *  - panic conditions are *our* fault (violated internal invariant) and
 *    raise InternalError.
 *
 * Both are exceptions rather than process aborts so that library consumers
 * (and the test suite) can observe and recover from them.
 */

#ifndef AUTOBRAID_COMMON_ERROR_HPP
#define AUTOBRAID_COMMON_ERROR_HPP

#include <stdexcept>
#include <string>

namespace autobraid {

/** Base class for all AutoBraid errors. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** The caller supplied invalid input or configuration. */
class UserError : public Error
{
  public:
    explicit UserError(const std::string &what_arg) : Error(what_arg) {}
};

/** An internal invariant was violated; indicates a bug in AutoBraid. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &what_arg) : Error(what_arg) {}
};

/**
 * Raise a UserError with a printf-style formatted message.
 *
 * @param fmt printf format string followed by its arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Raise an InternalError with a printf-style formatted message. Call this
 * when a condition that should be impossible is observed.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Raise an InternalError if @p cond is false. */
void require(bool cond, const char *msg);

} // namespace autobraid

#endif // AUTOBRAID_COMMON_ERROR_HPP

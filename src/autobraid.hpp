/**
 * @file
 * Umbrella header: the complete public API of the AutoBraid library.
 *
 *     #include "autobraid.hpp"
 *
 * Pulls in circuit construction, the QASM front end and exporter, all
 * benchmark generators, the lattice and cost models, placement,
 * routing, LLG analysis, the schedulers and pipeline, validation, and
 * visualization.
 */

#ifndef AUTOBRAID_AUTOBRAID_HPP
#define AUTOBRAID_AUTOBRAID_HPP

// Circuit IR and analysis.
#include "circuit/circuit.hpp"
#include "circuit/coupling.hpp"
#include "circuit/dag.hpp"
#include "circuit/layers.hpp"
#include "circuit/stats.hpp"

// OpenQASM 2.0 front end / exporter.
#include "qasm/decompose.hpp"
#include "qasm/elaborator.hpp"
#include "qasm/exporter.hpp"
#include "qasm/parser.hpp"

// Benchmark generators.
#include "gen/registry.hpp"

// Static analysis (autobraid-lint).
#include "analysis/lint.hpp"

// Lattice, error model, costs, defects.
#include "lattice/cost_model.hpp"
#include "lattice/defects.hpp"
#include "lattice/geometry.hpp"
#include "lattice/occupancy.hpp"
#include "lattice/surface_code.hpp"

// LLG analysis and routing.
#include "llg/bbox.hpp"
#include "llg/llg.hpp"
#include "route/astar.hpp"
#include "route/greedy_finder.hpp"
#include "route/stack_finder.hpp"

// Placement.
#include "place/initial.hpp"

// Scheduling and validation.
#include "sched/scheduler.hpp"
#include "sched/validator.hpp"

// Compiler driver: pass manager, standard passes, batch front-end.
#include "compiler/batch.hpp"
#include "compiler/driver.hpp"
#include "compiler/lint_pass.hpp"
#include "compiler/passes.hpp"

// Visualization / export.
#include "viz/ascii.hpp"
#include "viz/json.hpp"

#endif // AUTOBRAID_AUTOBRAID_HPP

#include "route/interference.hpp"

#include <algorithm>
#include <climits>
#include <cstring>

#include "common/error.hpp"

namespace autobraid {

namespace {

/**
 * Gather the low bit of 8 consecutive 0/1 bytes into one byte (LSB
 * first). Byte k sits at bit 8k; multiplying by the constant shifts it
 * to bit 56+k, and each destination bit receives exactly one term, so
 * no carries cross.
 */
inline uint64_t
pack8(const uint8_t *p)
{
    uint64_t x;
    std::memcpy(&x, p, 8);
    return (x * 0x0102040810204080ULL) >> 56;
}

inline int
popcount64(uint64_t w)
{
    return __builtin_popcountll(w);
}

inline int
ctz64(uint64_t w)
{
    return __builtin_ctzll(w);
}

} // namespace

InterferenceGraph::InterferenceGraph(const std::vector<CxTask> &tasks)
{
    rebuild(tasks);
}

void
InterferenceGraph::rebuild(const std::vector<CxTask> &tasks)
{
    const size_t n = tasks.size();
    n_ = n;
    stride_ = (n + 63) / 64;
    rows_.resize(n * stride_);
    degree_.assign(n, 0);
    removed_.assign(n, 0);
    active_count_ = n;
    active_.assign(stride_, ~uint64_t{0});
    if (stride_ > 0 && (n & 63u) != 0)
        active_[stride_ - 1] = (~uint64_t{0}) >> (64 - (n & 63u));

    // Flatten the bounding boxes. An empty box intersects nothing
    // (BBox::intersects returns false), so it gets coordinates that
    // fail every pair test, its own included.
    rmin_.resize(n);
    rmax_.resize(n);
    cmin_.resize(n);
    cmax_.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const BBox &b = tasks[i].bbox;
        if (b.empty()) {
            rmin_[i] = INT_MAX;
            rmax_[i] = INT_MIN;
            cmin_[i] = INT_MAX;
            cmax_[i] = INT_MIN;
        } else {
            rmin_[i] = b.rmin;
            rmax_[i] = b.rmax;
            cmin_[i] = b.cmin;
            cmax_[i] = b.cmax;
        }
    }

    // One row per node: a vectorizable sweep writes a 0/1 byte per
    // pair, then the bytes are packed 64-per-word. Padding bytes past
    // n stay zero so the last word needs no edge masking.
    hit_.resize(stride_ * 64);
    std::fill(hit_.begin() + static_cast<ptrdiff_t>(n), hit_.end(),
              uint8_t{0});
    const int *rlo = rmin_.data();
    const int *rhi = rmax_.data();
    const int *clo = cmin_.data();
    const int *chi = cmax_.data();
    uint8_t *hit = hit_.data();
    for (size_t i = 0; i < n; ++i) {
        const int a = rlo[i], b = rhi[i], c = clo[i], d = chi[i];
        for (size_t j = 0; j < n; ++j)
            hit[j] = static_cast<uint8_t>(
                static_cast<int>(a <= rhi[j]) &
                static_cast<int>(rlo[j] <= b) &
                static_cast<int>(c <= chi[j]) &
                static_cast<int>(clo[j] <= d));
        uint64_t *row = rows_.data() + i * stride_;
        int deg = 0;
        for (size_t w = 0; w < stride_; ++w) {
            uint64_t bits = 0;
            const uint8_t *p = hit + w * 64;
            for (int k = 0; k < 8; ++k)
                bits |= pack8(p + 8 * k) << (8 * k);
            row[w] = bits;
            deg += popcount64(bits);
        }
        // A non-empty box always meets itself; drop the self loop.
        deg -= hit[i];
        row[i >> 6] &= ~(uint64_t{1} << (i & 63u));
        degree_[i] = deg;
    }

    max_degree_bound_ = 0;
    for (size_t i = 0; i < n; ++i)
        max_degree_bound_ = std::max(max_degree_bound_, degree_[i]);
    for (auto &bucket : buckets_)
        bucket.clear();
    if (buckets_.size() < static_cast<size_t>(max_degree_bound_) + 1)
        buckets_.resize(static_cast<size_t>(max_degree_bound_) + 1);
    live_count_.assign(buckets_.size(), 0);
    for (size_t i = 0; i < n; ++i) {
        buckets_[static_cast<size_t>(degree_[i])].push_back(i);
        ++live_count_[static_cast<size_t>(degree_[i])];
    }
}

void
InterferenceGraph::compactBucket(int d) const
{
    std::vector<size_t> &b = buckets_[static_cast<size_t>(d)];
    if (b.size() == live_count_[static_cast<size_t>(d)])
        return; // nothing stale
    b.erase(std::remove_if(b.begin(), b.end(),
                           [this, d](size_t n) {
                               return removed_[n] != 0 ||
                                      degree_[n] != d;
                           }),
            b.end());
}

int
InterferenceGraph::maxDegree() const
{
    while (max_degree_bound_ > 0 &&
           live_count_[static_cast<size_t>(max_degree_bound_)] == 0)
        --max_degree_bound_;
    return max_degree_bound_;
}

std::vector<size_t>
InterferenceGraph::maxDegreeNodes() const
{
    std::vector<size_t> nodes;
    maxDegreeNodes(nodes);
    return nodes;
}

void
InterferenceGraph::maxDegreeNodes(std::vector<size_t> &out) const
{
    const int best = maxDegree();
    compactBucket(best);
    const std::vector<size_t> &bucket =
        buckets_[static_cast<size_t>(best)];
    out.assign(bucket.begin(), bucket.end());
    // Lazy decrements append out of index order; callers tie-break on
    // ascending indices, so restore that ordering here.
    std::sort(out.begin(), out.end());
}

size_t
InterferenceGraph::peelPick(const std::vector<CxTask> &tasks) const
{
    const int best = maxDegree();
    compactBucket(best);
    const std::vector<size_t> &bucket =
        buckets_[static_cast<size_t>(best)];
    require(!bucket.empty(), "InterferenceGraph::peelPick: empty graph");
    // (max area, min index) over the bucket is independent of bucket
    // order, so no sort is needed.
    size_t pick = bucket.front();
    long pick_area = tasks[pick].bbox.area();
    for (const size_t node : bucket) {
        const long area = tasks[node].bbox.area();
        if (area > pick_area ||
            (area == pick_area && node < pick)) {
            pick = node;
            pick_area = area;
        }
    }
    return pick;
}

void
InterferenceGraph::remove(size_t i)
{
    require(i < n_ && !removed_[i],
            "InterferenceGraph::remove: bad node");
    removed_[i] = 1;
    --active_count_;
    active_[i >> 6] &= ~(uint64_t{1} << (i & 63u));
    --live_count_[static_cast<size_t>(degree_[i])];
    const uint64_t *row = rows_.data() + i * stride_;
    for (size_t w = 0; w < stride_; ++w) {
        uint64_t m = row[w] & active_[w];
        while (m) {
            const size_t nb =
                w * 64 + static_cast<size_t>(ctz64(m));
            m &= m - 1;
            --live_count_[static_cast<size_t>(degree_[nb])];
            --degree_[nb];
            buckets_[static_cast<size_t>(degree_[nb])].push_back(nb);
            ++live_count_[static_cast<size_t>(degree_[nb])];
        }
    }
    degree_[i] = 0;
}

std::vector<size_t>
InterferenceGraph::allNeighbors(size_t i) const
{
    std::vector<size_t> out;
    const uint64_t *row = rows_.data() + i * stride_;
    for (size_t w = 0; w < stride_; ++w) {
        uint64_t m = row[w];
        while (m) {
            out.push_back(w * 64 + static_cast<size_t>(ctz64(m)));
            m &= m - 1;
        }
    }
    return out;
}

std::vector<size_t>
InterferenceGraph::activeNeighbors(size_t i) const
{
    std::vector<size_t> out;
    const uint64_t *row = rows_.data() + i * stride_;
    for (size_t w = 0; w < stride_; ++w) {
        uint64_t m = row[w] & active_[w];
        while (m) {
            out.push_back(w * 64 + static_cast<size_t>(ctz64(m)));
            m &= m - 1;
        }
    }
    return out;
}

std::vector<size_t>
InterferenceGraph::activeNodes() const
{
    std::vector<size_t> out;
    activeNodes(out);
    return out;
}

void
InterferenceGraph::activeNodes(std::vector<size_t> &out) const
{
    out.clear();
    for (size_t i = 0; i < n_; ++i)
        if (!removed_[i])
            out.push_back(i);
}

size_t
InterferenceGraph::components(std::vector<size_t> &comp_id) const
{
    comp_id.assign(n_, SIZE_MAX);
    unvisited_.assign(stride_, ~uint64_t{0});
    if (stride_ > 0 && (n_ & 63u) != 0)
        unvisited_[stride_ - 1] =
            (~uint64_t{0}) >> (64 - (n_ & 63u));
    size_t ncomp = 0;
    for (size_t i = 0; i < n_; ++i) {
        if (comp_id[i] != SIZE_MAX)
            continue;
        comp_id[i] = ncomp;
        unvisited_[i >> 6] &= ~(uint64_t{1} << (i & 63u));
        bfs_.clear();
        bfs_.push_back(i);
        for (size_t head = 0; head < bfs_.size(); ++head) {
            const uint64_t *row =
                rows_.data() + bfs_[head] * stride_;
            for (size_t w = 0; w < stride_; ++w) {
                uint64_t m = row[w] & unvisited_[w];
                if (!m)
                    continue;
                unvisited_[w] &= ~m;
                while (m) {
                    const size_t nb =
                        w * 64 + static_cast<size_t>(ctz64(m));
                    m &= m - 1;
                    comp_id[nb] = ncomp;
                    bfs_.push_back(nb);
                }
            }
        }
        ++ncomp;
    }
    return ncomp;
}

} // namespace autobraid

#include "route/interference.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace autobraid {

InterferenceGraph::InterferenceGraph(const std::vector<CxTask> &tasks)
    : adj_(tasks.size()),
      degree_(tasks.size(), 0),
      removed_(tasks.size(), 0),
      active_count_(tasks.size())
{
    for (size_t i = 0; i < tasks.size(); ++i) {
        for (size_t j = i + 1; j < tasks.size(); ++j) {
            if (tasks[i].bbox.intersects(tasks[j].bbox)) {
                adj_[i].push_back(j);
                adj_[j].push_back(i);
                ++degree_[i];
                ++degree_[j];
            }
        }
    }
    for (size_t i = 0; i < tasks.size(); ++i)
        max_degree_bound_ = std::max(max_degree_bound_, degree_[i]);
    buckets_.resize(static_cast<size_t>(max_degree_bound_) + 1);
    live_count_.resize(buckets_.size(), 0);
    for (size_t i = 0; i < tasks.size(); ++i) {
        buckets_[static_cast<size_t>(degree_[i])].push_back(i);
        ++live_count_[static_cast<size_t>(degree_[i])];
    }
}

void
InterferenceGraph::compactBucket(int d) const
{
    std::vector<size_t> &b = buckets_[static_cast<size_t>(d)];
    if (b.size() == live_count_[static_cast<size_t>(d)])
        return; // nothing stale
    b.erase(std::remove_if(b.begin(), b.end(),
                           [this, d](size_t n) {
                               return removed_[n] != 0 ||
                                      degree_[n] != d;
                           }),
            b.end());
}

int
InterferenceGraph::maxDegree() const
{
    while (max_degree_bound_ > 0 &&
           live_count_[static_cast<size_t>(max_degree_bound_)] == 0)
        --max_degree_bound_;
    return max_degree_bound_;
}

std::vector<size_t>
InterferenceGraph::maxDegreeNodes() const
{
    const int best = maxDegree();
    compactBucket(best);
    std::vector<size_t> nodes = buckets_[static_cast<size_t>(best)];
    // Lazy decrements append out of index order; callers tie-break on
    // ascending indices, so restore that ordering here.
    std::sort(nodes.begin(), nodes.end());
    return nodes;
}

void
InterferenceGraph::remove(size_t i)
{
    require(i < adj_.size() && !removed_[i],
            "InterferenceGraph::remove: bad node");
    removed_[i] = 1;
    --active_count_;
    --live_count_[static_cast<size_t>(degree_[i])];
    for (size_t n : adj_[i])
        if (!removed_[n]) {
            --live_count_[static_cast<size_t>(degree_[n])];
            --degree_[n];
            buckets_[static_cast<size_t>(degree_[n])].push_back(n);
            ++live_count_[static_cast<size_t>(degree_[n])];
        }
    degree_[i] = 0;
}

std::vector<size_t>
InterferenceGraph::activeNeighbors(size_t i) const
{
    std::vector<size_t> out;
    for (size_t n : adj_[i])
        if (!removed_[n])
            out.push_back(n);
    return out;
}

std::vector<size_t>
InterferenceGraph::activeNodes() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < adj_.size(); ++i)
        if (!removed_[i])
            out.push_back(i);
    return out;
}

} // namespace autobraid

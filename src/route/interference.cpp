#include "route/interference.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace autobraid {

InterferenceGraph::InterferenceGraph(const std::vector<CxTask> &tasks)
    : adj_(tasks.size()),
      degree_(tasks.size(), 0),
      removed_(tasks.size(), 0),
      active_count_(tasks.size())
{
    for (size_t i = 0; i < tasks.size(); ++i) {
        for (size_t j = i + 1; j < tasks.size(); ++j) {
            if (tasks[i].bbox.intersects(tasks[j].bbox)) {
                adj_[i].push_back(j);
                adj_[j].push_back(i);
                ++degree_[i];
                ++degree_[j];
            }
        }
    }
}

int
InterferenceGraph::maxDegree() const
{
    int best = 0;
    for (size_t i = 0; i < adj_.size(); ++i)
        if (!removed_[i])
            best = std::max(best, degree_[i]);
    return best;
}

std::vector<size_t>
InterferenceGraph::maxDegreeNodes() const
{
    const int best = maxDegree();
    std::vector<size_t> nodes;
    for (size_t i = 0; i < adj_.size(); ++i)
        if (!removed_[i] && degree_[i] == best)
            nodes.push_back(i);
    return nodes;
}

void
InterferenceGraph::remove(size_t i)
{
    require(i < adj_.size() && !removed_[i],
            "InterferenceGraph::remove: bad node");
    removed_[i] = 1;
    --active_count_;
    for (size_t n : adj_[i])
        if (!removed_[n])
            --degree_[n];
    degree_[i] = 0;
}

std::vector<size_t>
InterferenceGraph::activeNeighbors(size_t i) const
{
    std::vector<size_t> out;
    for (size_t n : adj_[i])
        if (!removed_[n])
            out.push_back(n);
    return out;
}

std::vector<size_t>
InterferenceGraph::activeNodes() const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < adj_.size(); ++i)
        if (!removed_[i])
            out.push_back(i);
    return out;
}

} // namespace autobraid

#include "route/interference.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace autobraid {

InterferenceGraph::InterferenceGraph(const std::vector<CxTask> &tasks)
{
    rebuild(tasks);
}

void
InterferenceGraph::rebuild(const std::vector<CxTask> &tasks)
{
    const size_t n = tasks.size();
    // Clear surviving adjacency rows before resizing so their heap
    // buffers are kept; rows beyond n are dropped, new rows start
    // empty.
    const size_t keep = std::min(adj_.size(), n);
    for (size_t i = 0; i < keep; ++i)
        adj_[i].clear();
    adj_.resize(n);
    degree_.assign(n, 0);
    removed_.assign(n, 0);
    active_count_ = n;
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            if (tasks[i].bbox.intersects(tasks[j].bbox)) {
                adj_[i].push_back(j);
                adj_[j].push_back(i);
                ++degree_[i];
                ++degree_[j];
            }
        }
    }
    max_degree_bound_ = 0;
    for (size_t i = 0; i < n; ++i)
        max_degree_bound_ = std::max(max_degree_bound_, degree_[i]);
    for (auto &bucket : buckets_)
        bucket.clear();
    if (buckets_.size() < static_cast<size_t>(max_degree_bound_) + 1)
        buckets_.resize(static_cast<size_t>(max_degree_bound_) + 1);
    live_count_.assign(buckets_.size(), 0);
    for (size_t i = 0; i < n; ++i) {
        buckets_[static_cast<size_t>(degree_[i])].push_back(i);
        ++live_count_[static_cast<size_t>(degree_[i])];
    }
}

void
InterferenceGraph::compactBucket(int d) const
{
    std::vector<size_t> &b = buckets_[static_cast<size_t>(d)];
    if (b.size() == live_count_[static_cast<size_t>(d)])
        return; // nothing stale
    b.erase(std::remove_if(b.begin(), b.end(),
                           [this, d](size_t n) {
                               return removed_[n] != 0 ||
                                      degree_[n] != d;
                           }),
            b.end());
}

int
InterferenceGraph::maxDegree() const
{
    while (max_degree_bound_ > 0 &&
           live_count_[static_cast<size_t>(max_degree_bound_)] == 0)
        --max_degree_bound_;
    return max_degree_bound_;
}

std::vector<size_t>
InterferenceGraph::maxDegreeNodes() const
{
    std::vector<size_t> nodes;
    maxDegreeNodes(nodes);
    return nodes;
}

void
InterferenceGraph::maxDegreeNodes(std::vector<size_t> &out) const
{
    const int best = maxDegree();
    compactBucket(best);
    const std::vector<size_t> &bucket =
        buckets_[static_cast<size_t>(best)];
    out.assign(bucket.begin(), bucket.end());
    // Lazy decrements append out of index order; callers tie-break on
    // ascending indices, so restore that ordering here.
    std::sort(out.begin(), out.end());
}

void
InterferenceGraph::remove(size_t i)
{
    require(i < adj_.size() && !removed_[i],
            "InterferenceGraph::remove: bad node");
    removed_[i] = 1;
    --active_count_;
    --live_count_[static_cast<size_t>(degree_[i])];
    for (size_t n : adj_[i])
        if (!removed_[n]) {
            --live_count_[static_cast<size_t>(degree_[n])];
            --degree_[n];
            buckets_[static_cast<size_t>(degree_[n])].push_back(n);
            ++live_count_[static_cast<size_t>(degree_[n])];
        }
    degree_[i] = 0;
}

std::vector<size_t>
InterferenceGraph::activeNeighbors(size_t i) const
{
    std::vector<size_t> out;
    for (size_t n : adj_[i])
        if (!removed_[n])
            out.push_back(n);
    return out;
}

std::vector<size_t>
InterferenceGraph::activeNodes() const
{
    std::vector<size_t> out;
    activeNodes(out);
    return out;
}

void
InterferenceGraph::activeNodes(std::vector<size_t> &out) const
{
    out.clear();
    for (size_t i = 0; i < adj_.size(); ++i)
        if (!removed_[i])
            out.push_back(i);
}

} // namespace autobraid

/**
 * @file
 * Braiding-path representation.
 *
 * A path is a simple sequence of adjacent routing vertices from a corner
 * of the source tile to a corner of the target tile. Because braiding is
 * latency-insensitive, a path's quality is measured only by the routing
 * resources (vertices) it consumes.
 */

#ifndef AUTOBRAID_ROUTE_PATH_HPP
#define AUTOBRAID_ROUTE_PATH_HPP

#include <string>
#include <vector>

#include "lattice/geometry.hpp"

namespace autobraid {

/** An established braiding path. */
struct Path
{
    std::vector<VertexId> vertices;

    /** Number of vertices consumed. */
    size_t length() const { return vertices.size(); }

    bool empty() const { return vertices.empty(); }

    /** First vertex (source-tile corner). */
    VertexId front() const { return vertices.front(); }

    /** Last vertex (target-tile corner). */
    VertexId back() const { return vertices.back(); }

    /**
     * Validate against @p grid: non-empty, consecutive vertices adjacent,
     * no repeated vertex, endpoints on corners of @p src / @p dst.
     * @return empty string when valid, else a diagnostic.
     */
    std::string validate(const Grid &grid, const Cell &src,
                         const Cell &dst) const;

    /** Render as "(r,c) -> (r,c) -> ...". */
    std::string toString(const Grid &grid) const;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_PATH_HPP

/**
 * @file
 * Stack-based path finder (paper Fig. 13).
 *
 * Given the concurrent CX gates of one scheduling instant, the finder:
 *  1. builds the CX interference graph;
 *  2. repeatedly removes the maximum-degree node (ties: largest
 *     bounding-box area) and pushes it on a stack, until the maximum
 *     degree is <= 2;
 *  3. routes the remaining low-interference gates first (small bounding
 *     boxes first, so short-distance pairs are handled locally);
 *  4. pops the stack LIFO, routing each gate with A* over the vertices
 *     that remain free.
 *
 * The LIFO order guarantees that gates whose long paths could partition
 * the lattice are placed last, and it naturally handles the strictly
 * nested case of Theorem 2 (the enclosing, largest-area gate is routed
 * last).
 *
 * All scratch state — the interference graph, the peel stack, and the
 * claimed-vertex mask merged with the caller's blocked mask — persists
 * across findPaths() calls, so the scheduler's routing inner loop is
 * allocation-free across dispatch instants.
 */

#ifndef AUTOBRAID_ROUTE_STACK_FINDER_HPP
#define AUTOBRAID_ROUTE_STACK_FINDER_HPP

#include <vector>

#include "route/astar.hpp"
#include "route/interference.hpp"

namespace autobraid {

/** Result of routing one batch of concurrent CX tasks. */
struct RoutingOutcome
{
    /** (task index, path) for every task that was routed. */
    std::vector<std::pair<size_t, Path>> routed;

    /** Task indices that could not be routed this instant. */
    std::vector<size_t> failed;

    /** #routed / #tasks (the paper's scheduling ratio); 1.0 when empty. */
    double ratio = 1.0;
};

/** Common interface so the scheduler can swap policies. */
class PathFinder
{
  public:
    virtual ~PathFinder() = default;

    /**
     * Route @p tasks simultaneously. Paths must be vertex-disjoint with
     * each other and avoid externally @p blocked vertices (one byte per
     * grid vertex, non-zero = unavailable).
     */
    virtual RoutingOutcome findPaths(const std::vector<CxTask> &tasks,
                                     BlockedMask blocked) = 0;

    /** Human-readable policy name for reports. */
    virtual const char *name() const = 0;
};

/** The AutoBraid stack-based finder. */
class StackPathFinder : public PathFinder
{
  public:
    explicit StackPathFinder(const Grid &grid);

    RoutingOutcome findPaths(const std::vector<CxTask> &tasks,
                             BlockedMask blocked) override;

    const char *name() const override { return "stack"; }

  private:
    AStarRouter router_;

    // Persistent per-instant scratch, reused across findPaths calls.
    InterferenceGraph ig_;
    std::vector<size_t> stack_;
    std::vector<size_t> ties_;
    std::vector<size_t> residual_;
    /** Caller's blocked mask merged with vertices claimed this call. */
    std::vector<uint8_t> unavailable_;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_STACK_FINDER_HPP

/**
 * @file
 * Stack-based path finder (paper Fig. 13).
 *
 * Given the concurrent CX gates of one scheduling instant, the finder:
 *  1. builds the CX interference graph;
 *  2. repeatedly removes the maximum-degree node (ties: largest
 *     bounding-box area) and pushes it on a stack, until the maximum
 *     degree is <= 2;
 *  3. routes the remaining low-interference gates first (small bounding
 *     boxes first, so short-distance pairs are handled locally);
 *  4. pops the stack LIFO, routing each gate with A* over the vertices
 *     that remain free.
 *
 * The LIFO order guarantees that gates whose long paths could partition
 * the lattice are placed last, and it naturally handles the strictly
 * nested case of Theorem 2 (the enclosing, largest-area gate is routed
 * last).
 *
 * Connected components of the interference graph are natural
 * independent units: the peel is degree-local, so the stack discipline
 * applied to each component separately equals the global discipline
 * restricted to that component. The finder therefore routes each
 * component against the caller's base blocked mask (a pure function of
 * the component and the mask, so components may run on worker threads)
 * and merges the proposals in ascending component order. Paths may
 * stray outside their component's bounding boxes, so a later
 * component's proposal can collide with an earlier one's claims; the
 * merge detects that and re-routes the whole component against the
 * accumulated mask on the merging thread. Everything that affects the
 * result — component order, per-component routing, merge repair — is
 * independent of the worker count, so any `jobs` value produces
 * byte-identical outcomes.
 *
 * All scratch state — the interference graph, the peel stack, and the
 * claimed-vertex mask merged with the caller's blocked mask — persists
 * across findPaths() calls, so the scheduler's routing inner loop is
 * allocation-free across dispatch instants.
 */

#ifndef AUTOBRAID_ROUTE_STACK_FINDER_HPP
#define AUTOBRAID_ROUTE_STACK_FINDER_HPP

#include <memory>
#include <vector>

#include "route/astar.hpp"
#include "route/interference.hpp"

namespace autobraid {

/** Result of routing one batch of concurrent CX tasks. */
struct RoutingOutcome
{
    /** (task index, path) for every task that was routed. */
    std::vector<std::pair<size_t, Path>> routed;

    /** Task indices that could not be routed this instant. */
    std::vector<size_t> failed;

    /** #routed / #tasks (the paper's scheduling ratio); 1.0 when empty. */
    double ratio = 1.0;
};

/** Common interface so the scheduler can swap policies. */
class PathFinder
{
  public:
    virtual ~PathFinder() = default;

    /**
     * Route @p tasks simultaneously. Paths must be vertex-disjoint with
     * each other and avoid externally @p blocked vertices (one bit per
     * grid vertex, set = unavailable).
     */
    virtual RoutingOutcome findPaths(const std::vector<CxTask> &tasks,
                                     BlockedMask blocked) = 0;

    /** Human-readable policy name for reports. */
    virtual const char *name() const = 0;
};

/** The AutoBraid stack-based finder. */
class StackPathFinder : public PathFinder
{
  public:
    /**
     * @param grid the routing lattice
     * @param jobs worker threads for component-parallel routing; 1 =
     *        route every component on the calling thread. The outcome
     *        is byte-identical for every value.
     */
    explicit StackPathFinder(const Grid &grid, int jobs = 1);

    RoutingOutcome findPaths(const std::vector<CxTask> &tasks,
                             BlockedMask blocked) override;

    const char *name() const override { return "stack"; }

  private:
    /** Per-thread routing scratch (router + peel + claim buffers). */
    struct RouteScratch
    {
        explicit RouteScratch(const Grid &grid) : router(grid) {}

        AStarRouter router;
        InterferenceGraph ig;
        std::vector<size_t> stack;
        std::vector<size_t> residual;
        /** Base mask merged with vertices claimed so far. */
        BlockedBitset unavailable;
        /** Component's tasks, ascending global task index. */
        std::vector<CxTask> comp_tasks;
        /** Global task index per local task. */
        std::vector<size_t> comp_index;
    };

    /**
     * Peel + route @p tasks (whose interference graph @p ig is already
     * built) against @p blocked using scratch @p s, appending results
     * to @p out. @p global_index maps local task index to the caller's
     * task index (nullptr = identity).
     */
    static void runStack(const std::vector<CxTask> &tasks,
                         const std::vector<size_t> *global_index,
                         BlockedMask blocked, InterferenceGraph &ig,
                         RouteScratch &s, RoutingOutcome &out);

    const Grid *grid_;
    int jobs_ = 1;

    // Persistent per-instant scratch, reused across findPaths calls.
    InterferenceGraph ig_;
    std::vector<size_t> comp_id_;
    std::vector<std::vector<size_t>> comp_members_;
    std::vector<RoutingOutcome> proposals_;
    /** Base mask merged with all accepted claims (merge phase). */
    BlockedBitset merged_;
    /** Vertices claimed by accepted proposals only (conflict test). */
    BlockedBitset claimed_;
    /** scratch_[0] serves the calling thread; one more per worker. */
    std::vector<std::unique_ptr<RouteScratch>> scratch_;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_STACK_FINDER_HPP

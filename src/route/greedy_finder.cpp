#include "route/greedy_finder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

GreedyPathFinder::GreedyPathFinder(const Grid &grid, GreedyOrder order,
                                   bool all_corners)
    : router_(grid),
      order_(order),
      corner_mask_(all_corners ? AStarRouter::kAllCorners
                               : AStarRouter::kFixedCorner)
{}

const char *
GreedyPathFinder::name() const
{
    switch (order_) {
      case GreedyOrder::Distance: return "greedy-distance";
      case GreedyOrder::Program: return "greedy-program";
      case GreedyOrder::Largest: return "greedy-largest";
      case GreedyOrder::Criticality: return "greedy-criticality";
    }
    return "greedy";
}

RoutingOutcome
GreedyPathFinder::findPaths(const std::vector<CxTask> &tasks,
                            BlockedMask blocked)
{
    RoutingOutcome outcome;
    if (tasks.empty())
        return outcome;
    AUTOBRAID_SPAN("route.greedy_finder");
    AUTOBRAID_OBSERVE("route.greedy_tasks",
                      static_cast<double>(tasks.size()));
    require(blocked.size() ==
                static_cast<size_t>(router_.grid().numVertices()),
            "GreedyPathFinder: blocked mask does not cover the grid");

    order_scratch_.resize(tasks.size());
    std::iota(order_scratch_.begin(), order_scratch_.end(), 0);
    if (order_ == GreedyOrder::Distance) {
        std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                         [&tasks](size_t x, size_t y) {
                             return tasks[x].a.dist(tasks[x].b) <
                                    tasks[y].a.dist(tasks[y].b);
                         });
    } else if (order_ == GreedyOrder::Largest) {
        std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                         [&tasks](size_t x, size_t y) {
                             return tasks[x].a.dist(tasks[x].b) >
                                    tasks[y].a.dist(tasks[y].b);
                         });
    } else if (order_ == GreedyOrder::Criticality) {
        std::stable_sort(order_scratch_.begin(), order_scratch_.end(),
                         [&tasks](size_t x, size_t y) {
                             return tasks[x].priority >
                                    tasks[y].priority;
                         });
    }

    unavailable_.assignWords(blocked.words(), blocked.size());
    router_.beginMaskEpoch();
    for (size_t idx : order_scratch_) {
        auto path = router_.route(tasks[idx].a, tasks[idx].b,
                                  BlockedMask(unavailable_), nullptr,
                                  corner_mask_, corner_mask_);
        if (!path) {
            outcome.failed.push_back(idx);
            continue;
        }
        for (VertexId v : path->vertices)
            unavailable_.set(static_cast<size_t>(v));
        outcome.routed.emplace_back(idx, std::move(*path));
    }
    outcome.ratio = static_cast<double>(outcome.routed.size()) /
                    static_cast<double>(tasks.size());
    return outcome;
}

} // namespace autobraid

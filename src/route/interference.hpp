/**
 * @file
 * CX interference graph (paper §3.3.2).
 *
 * Each node is one concurrent CX gate; an edge connects two gates whose
 * outer bounding boxes intersect. The stack-based path finder repeatedly
 * removes the maximum-degree node (ties broken by largest bounding-box
 * area) until the maximum degree is <= 2 — a relaxation of the LLG size-3
 * condition of Theorem 1.
 *
 * Adjacency is a word-packed bitmap (one n-bit row per node) rather
 * than per-node edge lists: the O(n^2) build writes one bit per pair
 * instead of 8-byte list entries on both endpoints, the pair tests
 * vectorize over flat coordinate arrays, and neighbour iteration walks
 * n/64 words per row. Dense instants (the Maslov fallback's all-to-all
 * layers) are exactly where edge lists blow up — half a million list
 * entries for a 1000-gate instant versus a 125 KB bitmap.
 *
 * Degrees only ever decrease after construction, so the maximum-degree
 * queries are served from per-degree buckets with lazy deletion: each
 * degree decrement appends the node to its new bucket, stale entries
 * are skipped when a bucket is drained, and the max-degree bound only
 * moves downward. That makes a full peel O(n + E) in bucket work where
 * the previous implementation rescanned every node per removal
 * (quadratic on the dense all-to-all layers the Maslov fallback
 * targets).
 */

#ifndef AUTOBRAID_ROUTE_INTERFERENCE_HPP
#define AUTOBRAID_ROUTE_INTERFERENCE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "llg/bbox.hpp"

namespace autobraid {

/** Mutable interference graph over a fixed set of tasks. */
class InterferenceGraph
{
  public:
    /** An empty graph, ready for rebuild() (persistent-scratch use). */
    InterferenceGraph() = default;

    /** Build the O(n^2) bbox-intersection graph over @p tasks. */
    explicit InterferenceGraph(const std::vector<CxTask> &tasks);

    /**
     * Rebuild the graph over @p tasks in place, reusing the bitmap and
     * bucket buffers from previous builds so a finder that runs once
     * per dispatch instant does not reallocate in steady state.
     */
    void rebuild(const std::vector<CxTask> &tasks);

    /** Total nodes, including removed ones. */
    size_t originalSize() const { return n_; }

    /** Nodes still present. */
    size_t size() const { return active_count_; }
    bool empty() const { return active_count_ == 0; }

    /** True when node @p i has been removed. */
    bool removed(size_t i) const { return removed_[i] != 0; }

    /** Current degree of node @p i (edges to non-removed nodes only). */
    int degree(size_t i) const { return degree_[i]; }

    /** Largest degree among remaining nodes (0 when empty). */
    int maxDegree() const;

    /**
     * All remaining nodes with the current maximum degree, in
     * ascending index order (callers tie-break on this ordering).
     */
    std::vector<size_t> maxDegreeNodes() const;

    /** maxDegreeNodes() into a caller-owned buffer (no allocation). */
    void maxDegreeNodes(std::vector<size_t> &out) const;

    /**
     * The stack-peel victim: the maximum-degree node with the largest
     * bounding-box area, ties broken by smallest index. Equivalent to
     * scanning maxDegreeNodes() for the largest area, without the
     * copy and sort of materializing the bucket.
     */
    size_t peelPick(const std::vector<CxTask> &tasks) const;

    /** Remove node @p i, updating neighbour degrees. */
    void remove(size_t i);

    /** Neighbours of @p i in the *original* graph (may include removed). */
    std::vector<size_t> allNeighbors(size_t i) const;

    /** Remaining (non-removed) neighbours of @p i. */
    std::vector<size_t> activeNeighbors(size_t i) const;

    /** Remaining nodes in index order. */
    std::vector<size_t> activeNodes() const;

    /** activeNodes() into a caller-owned buffer (no allocation). */
    void activeNodes(std::vector<size_t> &out) const;

    /**
     * Label the connected components of the *original* graph (removals
     * ignored): comp_id[i] is the component of node i, components
     * numbered by their smallest member index. Returns the component
     * count. Word-wise BFS: each frontier expansion ANDs the node's
     * adjacency row against the not-yet-visited bitmap, so labeling is
     * O(n^2/64) instead of O(n + E).
     */
    size_t components(std::vector<size_t> &comp_id) const;

  private:
    /** Drop stale entries from bucket @p d (lazy-deletion sweep). */
    void compactBucket(int d) const;

    size_t n_ = 0;
    size_t stride_ = 0;              ///< words per adjacency row
    std::vector<uint64_t> rows_;     ///< n_ rows x stride_ words
    std::vector<uint64_t> active_;   ///< bit i set while node i remains
    std::vector<int> degree_;
    std::vector<uint8_t> removed_;
    size_t active_count_ = 0;
    // Flat bbox coordinates (SoA) so the rebuild pair tests vectorize;
    // hit_ is the per-row 0/1 byte scratch the bit packer consumes.
    std::vector<int> rmin_, rmax_, cmin_, cmax_;
    std::vector<uint8_t> hit_;
    // components() scratch (logically const query).
    mutable std::vector<uint64_t> unvisited_;
    mutable std::vector<size_t> bfs_;
    // buckets_[d] holds every node whose degree was ever exactly d; an
    // entry is live iff the node is still present and still at degree
    // d. A node's degree strictly decreases, so it appears at most
    // once per bucket and total bucket work is O(n + E) per peel.
    // live_count_[d] tracks the number of live entries exactly, so
    // maxDegree() is an O(1) amortized bound walk and only
    // maxDegreeNodes() ever touches bucket contents. Mutable: the
    // max-degree queries are logically const but lower the cached
    // bound and purge stale entries as they go.
    mutable std::vector<std::vector<size_t>> buckets_;
    std::vector<size_t> live_count_;
    mutable int max_degree_bound_ = 0;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_INTERFERENCE_HPP

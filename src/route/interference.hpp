/**
 * @file
 * CX interference graph (paper §3.3.2).
 *
 * Each node is one concurrent CX gate; an edge connects two gates whose
 * outer bounding boxes intersect. The stack-based path finder repeatedly
 * removes the maximum-degree node (ties broken by largest bounding-box
 * area) until the maximum degree is <= 2 — a relaxation of the LLG size-3
 * condition of Theorem 1.
 */

#ifndef AUTOBRAID_ROUTE_INTERFERENCE_HPP
#define AUTOBRAID_ROUTE_INTERFERENCE_HPP

#include <cstddef>
#include <vector>

#include "llg/bbox.hpp"

namespace autobraid {

/** Mutable interference graph over a fixed set of tasks. */
class InterferenceGraph
{
  public:
    /** Build the O(n^2) bbox-intersection graph over @p tasks. */
    explicit InterferenceGraph(const std::vector<CxTask> &tasks);

    /** Total nodes, including removed ones. */
    size_t originalSize() const { return adj_.size(); }

    /** Nodes still present. */
    size_t size() const { return active_count_; }

    /** True when node @p i has been removed. */
    bool removed(size_t i) const { return removed_[i] != 0; }

    /** Current degree of node @p i (edges to non-removed nodes only). */
    int degree(size_t i) const { return degree_[i]; }

    /** Largest degree among remaining nodes (0 when empty). */
    int maxDegree() const;

    /** All remaining nodes with the current maximum degree. */
    std::vector<size_t> maxDegreeNodes() const;

    /** Remove node @p i, updating neighbour degrees. */
    void remove(size_t i);

    /** Neighbours of @p i in the *original* graph (may include removed). */
    const std::vector<size_t> &allNeighbors(size_t i) const
    {
        return adj_[i];
    }

    /** Remaining (non-removed) neighbours of @p i. */
    std::vector<size_t> activeNeighbors(size_t i) const;

    /** Remaining nodes in index order. */
    std::vector<size_t> activeNodes() const;

  private:
    std::vector<std::vector<size_t>> adj_;
    std::vector<int> degree_;
    std::vector<uint8_t> removed_;
    size_t active_count_ = 0;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_INTERFERENCE_HPP

/**
 * @file
 * Greedy shortest-distance path finder — the "GP" baseline.
 *
 * Reimplements the essence of the best greedy policy of Javadi-Abhari et
 * al. [10], the paper's baseline: at each scheduling instant, route the
 * ready CX gates one at a time with shortest-path A*, prioritizing pairs
 * by distance, with no interference-graph ordering and no global view.
 * An alternative program-order mode is provided for the ordering
 * ablation bench.
 *
 * Like the stack finder, the ordering and claimed-vertex scratch
 * persists across findPaths() calls so the routing inner loop does not
 * allocate per dispatch instant.
 */

#ifndef AUTOBRAID_ROUTE_GREEDY_FINDER_HPP
#define AUTOBRAID_ROUTE_GREEDY_FINDER_HPP

#include "route/stack_finder.hpp"

namespace autobraid {

/** Task-ordering strategies for the greedy finder. */
enum class GreedyOrder
{
    Distance,    ///< closest pairs first (the paper's GP baseline)
    Program,     ///< first-come-first-served in task order
    Largest,     ///< farthest pairs first (adversarial ablation)
    Criticality, ///< highest-criticality first (another [10] policy)
};

/** Greedy baseline path finder. */
class GreedyPathFinder : public PathFinder
{
  public:
    /**
     * @param grid the routing grid
     * @param order task-ordering strategy
     * @param all_corners when false (the faithful baseline) braids are
     *        defect-to-defect: only the NW corner of each tile is a
     *        legal endpoint, without AutoBraid's 16 configurations.
     */
    explicit GreedyPathFinder(const Grid &grid,
                              GreedyOrder order = GreedyOrder::Distance,
                              bool all_corners = false);

    RoutingOutcome findPaths(const std::vector<CxTask> &tasks,
                             BlockedMask blocked) override;

    const char *name() const override;

  private:
    AStarRouter router_;
    GreedyOrder order_;
    unsigned corner_mask_;

    // Persistent per-instant scratch, reused across findPaths calls.
    std::vector<size_t> order_scratch_;
    /** Caller's blocked mask merged with vertices claimed this call. */
    BlockedBitset unavailable_;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_GREEDY_FINDER_HPP

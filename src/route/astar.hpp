/**
 * @file
 * A* search for braiding paths.
 *
 * A braiding path may start at any of the 16 corner-to-corner
 * configurations between two tiles (paper Fig. 5), so the search is
 * multi-source (all free corners of the source tile) and multi-target
 * (all corners of the target tile). Cost is the number of vertices
 * consumed; the heuristic is the minimum Manhattan distance to any target
 * corner, which is admissible, so returned paths consume the minimum
 * number of free vertices.
 */

#ifndef AUTOBRAID_ROUTE_ASTAR_HPP
#define AUTOBRAID_ROUTE_ASTAR_HPP

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "lattice/geometry.hpp"
#include "route/path.hpp"

namespace autobraid {

/**
 * Flat blocked mask over all grid vertices: byte v is non-zero when
 * vertex v is unavailable for routing (dead or occupied). A non-owning
 * view — the caller keeps the bytes alive for the duration of the
 * query. This replaces the former std::function<bool(VertexId)>
 * predicate so the A* inner loop reads one byte per probe instead of
 * making an indirect call through a closure.
 */
class BlockedMask
{
  public:
    BlockedMask() = default;

    BlockedMask(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    /** View over @p bytes (one byte per vertex). */
    /* implicit */ BlockedMask(const std::vector<uint8_t> &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {}

    /** True when vertex @p v is unavailable. */
    bool operator[](VertexId v) const
    {
        return data_[static_cast<size_t>(v)] != 0;
    }

    const uint8_t *data() const { return data_; }
    size_t size() const { return size_; }

  private:
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
};

/** Materialize a blocked byte-mask from a predicate (tests, tools). */
template <typename Pred>
std::vector<uint8_t>
materializeBlocked(const Grid &grid, Pred &&pred)
{
    std::vector<uint8_t> bytes(static_cast<size_t>(grid.numVertices()),
                               0);
    for (VertexId v = 0; v < grid.numVertices(); ++v)
        bytes[static_cast<size_t>(v)] = pred(v) ? 1 : 0;
    return bytes;
}

/** All-free blocked mask bytes for @p grid (tests, benches). */
std::vector<uint8_t> noBlockedVertices(const Grid &grid);

/**
 * Reusable A* router. Scratch buffers (visit stamps, distances,
 * parents, and the open list) are owned by the instance and stamped
 * per query, so repeated route() calls do not allocate.
 */
class AStarRouter
{
  public:
    explicit AStarRouter(const Grid &grid);

    /** Corner bitmask: all 16 endpoint configurations allowed. */
    static constexpr unsigned kAllCorners = 0xF;

    /**
     * NW corner only — models the baseline's defect-to-defect braids,
     * which lack AutoBraid's 16 endpoint configurations (paper Fig. 5).
     */
    static constexpr unsigned kFixedCorner = 0x1;

    /**
     * Find a shortest congestion-free path from a corner of @p src to a
     * corner of @p dst.
     *
     * @param src source tile (must differ from @p dst)
     * @param dst target tile
     * @param blocked byte per grid vertex; non-zero = unavailable to
     *        this path (must cover every vertex of the grid)
     * @param confine optional box; when non-null the path may only use
     *        vertices inside or on it (LLG-local routing)
     * @param src_corners bitmask over the NW/NE/SW/SE corners of @p src
     *        usable as path start
     * @param dst_corners bitmask over the corners of @p dst usable as
     *        path end
     * @return the path, or std::nullopt when no free path exists.
     */
    std::optional<Path> route(const Cell &src, const Cell &dst,
                              BlockedMask blocked,
                              const BBox *confine = nullptr,
                              unsigned src_corners = kAllCorners,
                              unsigned dst_corners = kAllCorners);

    /** The grid this router searches. */
    const Grid &grid() const { return *grid_; }

  private:
    /** (f, g, vertex) open-list entry; see route() for the ordering. */
    using OpenEntry = std::tuple<int32_t, int32_t, VertexId>;

    const Grid *grid_;
    uint32_t stamp_ = 0;
    std::vector<uint32_t> seen_;    // stamp when visited this query
    std::vector<int32_t> dist_;
    std::vector<VertexId> parent_;
    std::vector<OpenEntry> open_;   // binary-heap storage, reused
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_ASTAR_HPP

/**
 * @file
 * A* search for braiding paths.
 *
 * A braiding path may start at any of the 16 corner-to-corner
 * configurations between two tiles (paper Fig. 5), so the search is
 * multi-source (all free corners of the source tile) and multi-target
 * (all corners of the target tile). Cost is the number of vertices
 * consumed; the heuristic is the minimum Manhattan distance to any target
 * corner, which is admissible, so returned paths consume the minimum
 * number of free vertices.
 */

#ifndef AUTOBRAID_ROUTE_ASTAR_HPP
#define AUTOBRAID_ROUTE_ASTAR_HPP

#include <cstdint>
#include <optional>
#include <tuple>
#include <vector>

#include "lattice/geometry.hpp"
#include "route/blocked_bitset.hpp"
#include "route/path.hpp"

namespace autobraid {

/**
 * Flat blocked mask over all grid vertices, packed 64 vertices per
 * word: bit v is set when vertex v is unavailable for routing (dead or
 * occupied). A non-owning view — the caller keeps the words alive for
 * the duration of the query (usually a BlockedBitset). The word
 * packing keeps whole-mask refreshes and contiguous-range feasibility
 * checks word-wise; the A* inner loop still reads one bit per probe.
 */
class BlockedMask
{
  public:
    BlockedMask() = default;

    /** View over @p words covering @p size vertices. */
    BlockedMask(const uint64_t *words, size_t size)
        : words_(words), size_(size)
    {}

    /** View over an owning bitset (one bit per vertex). */
    /* implicit */ BlockedMask(const BlockedBitset &bits)
        : words_(bits.words()), size_(bits.size())
    {}

    /** True when vertex @p v is unavailable. */
    bool operator[](VertexId v) const
    {
        const auto i = static_cast<size_t>(v);
        return (words_[i >> 6] >> (i & 63u)) & 1u;
    }

    const uint64_t *words() const { return words_; }
    size_t size() const { return size_; }
    size_t numWords() const
    {
        return BlockedBitset::wordCount(size_);
    }

  private:
    const uint64_t *words_ = nullptr;
    size_t size_ = 0;
};

/** Materialize a blocked bitset from a predicate (tests, tools). */
template <typename Pred>
BlockedBitset
materializeBlocked(const Grid &grid, Pred &&pred)
{
    BlockedBitset bits(static_cast<size_t>(grid.numVertices()));
    for (VertexId v = 0; v < grid.numVertices(); ++v)
        if (pred(v))
            bits.set(static_cast<size_t>(v));
    return bits;
}

/** All-free blocked bitset for @p grid (tests, benches). */
BlockedBitset noBlockedVertices(const Grid &grid);

/**
 * Reusable A* router. Scratch buffers (visit stamps, distances,
 * parents, and the open list) are owned by the instance and stamped
 * per query, so repeated route() calls do not allocate.
 */
class AStarRouter
{
  public:
    explicit AStarRouter(const Grid &grid);

    /** Corner bitmask: all 16 endpoint configurations allowed. */
    static constexpr unsigned kAllCorners = 0xF;

    /**
     * NW corner only — models the baseline's defect-to-defect braids,
     * which lack AutoBraid's 16 endpoint configurations (paper Fig. 5).
     */
    static constexpr unsigned kFixedCorner = 0x1;

    /**
     * Find a shortest congestion-free path from a corner of @p src to a
     * corner of @p dst.
     *
     * @param src source tile (must differ from @p dst)
     * @param dst target tile
     * @param blocked byte per grid vertex; non-zero = unavailable to
     *        this path (must cover every vertex of the grid)
     * @param confine optional box; when non-null the path may only use
     *        vertices inside or on it (LLG-local routing)
     * @param src_corners bitmask over the NW/NE/SW/SE corners of @p src
     *        usable as path start
     * @param dst_corners bitmask over the corners of @p dst usable as
     *        path end
     * @return the path, or std::nullopt when no free path exists.
     */
    std::optional<Path> route(const Cell &src, const Cell &dst,
                              BlockedMask blocked,
                              const BBox *confine = nullptr,
                              unsigned src_corners = kAllCorners,
                              unsigned dst_corners = kAllCorners);

    /**
     * Start a monotone-mask epoch: until the next call, every route()
     * query must see a blocked mask that only ever gains blocked
     * vertices (the path-finder claim pattern). Within such an epoch a
     * failed flood visits exactly the free connected region of its
     * usable source corners, so the router stamps those vertices and
     * instantly fails later queries whose sources all sit in
     * already-flooded regions that contain no usable target corner.
     * Sound because masks only grow: two vertices connected now were
     * connected at every earlier flood, so their latest region stamps
     * are equal. Disabled for confined queries (their floods do not
     * cover the whole region).
     */
    void beginMaskEpoch();

    /** The grid this router searches. */
    const Grid &grid() const { return *grid_; }

  private:
    /** (f, g, vertex) open-list entry; see route() for the ordering. */
    using OpenEntry = std::tuple<int32_t, int32_t, VertexId>;

    const Grid *grid_;
    uint32_t stamp_ = 0;
    std::vector<uint32_t> seen_;    // stamp when visited this query
    std::vector<int32_t> dist_;
    std::vector<VertexId> parent_;
    std::vector<OpenEntry> open_;   // binary-heap storage, reused
    // Failed-flood region cache (see beginMaskEpoch).
    bool epoch_active_ = false;
    uint32_t flood_id_ = 0;          // id of the last failed flood
    uint32_t epoch_first_flood_ = 1; // stamps below this are stale
    std::vector<uint32_t> region_stamp_; // latest failed flood per vertex
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_ASTAR_HPP

/**
 * @file
 * A* search for braiding paths.
 *
 * A braiding path may start at any of the 16 corner-to-corner
 * configurations between two tiles (paper Fig. 5), so the search is
 * multi-source (all free corners of the source tile) and multi-target
 * (all corners of the target tile). Cost is the number of vertices
 * consumed; the heuristic is the minimum Manhattan distance to any target
 * corner, which is admissible, so returned paths consume the minimum
 * number of free vertices.
 */

#ifndef AUTOBRAID_ROUTE_ASTAR_HPP
#define AUTOBRAID_ROUTE_ASTAR_HPP

#include <functional>
#include <optional>
#include <vector>

#include "lattice/geometry.hpp"
#include "route/path.hpp"

namespace autobraid {

/** Predicate: true when a vertex is unavailable for routing. */
using BlockedFn = std::function<bool(VertexId)>;

/**
 * Reusable A* router. Scratch buffers are owned by the instance and
 * stamped per query, so repeated route() calls do not reallocate.
 */
class AStarRouter
{
  public:
    explicit AStarRouter(const Grid &grid);

    /** Corner bitmask: all 16 endpoint configurations allowed. */
    static constexpr unsigned kAllCorners = 0xF;

    /**
     * NW corner only — models the baseline's defect-to-defect braids,
     * which lack AutoBraid's 16 endpoint configurations (paper Fig. 5).
     */
    static constexpr unsigned kFixedCorner = 0x1;

    /**
     * Find a shortest congestion-free path from a corner of @p src to a
     * corner of @p dst.
     *
     * @param src source tile (must differ from @p dst)
     * @param dst target tile
     * @param blocked vertices unavailable to this path
     * @param confine optional box; when non-null the path may only use
     *        vertices inside or on it (LLG-local routing)
     * @param src_corners bitmask over the NW/NE/SW/SE corners of @p src
     *        usable as path start
     * @param dst_corners bitmask over the corners of @p dst usable as
     *        path end
     * @return the path, or std::nullopt when no free path exists.
     */
    std::optional<Path> route(const Cell &src, const Cell &dst,
                              const BlockedFn &blocked,
                              const BBox *confine = nullptr,
                              unsigned src_corners = kAllCorners,
                              unsigned dst_corners = kAllCorners);

    /** The grid this router searches. */
    const Grid &grid() const { return *grid_; }

  private:
    const Grid *grid_;
    uint32_t stamp_ = 0;
    std::vector<uint32_t> seen_;    // stamp when visited this query
    std::vector<int32_t> dist_;
    std::vector<VertexId> parent_;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_ASTAR_HPP

/**
 * @file
 * Word-packed blocked-vertex bitmap.
 *
 * The routing hot path keeps one "blocked" bit per grid vertex and
 * refreshes it every dispatch instant. Packing 64 vertices per word
 * makes the bulk operations the scheduler and the feasibility checks
 * actually perform — copy the whole mask, clear it, OR two masks,
 * test a contiguous corner range — word-wise instead of byte-wise,
 * which is what keeps 100x100+ lattices (10k+ vertices, ROADMAP item
 * 4) inside a few cache lines per refresh.
 */

#ifndef AUTOBRAID_ROUTE_BLOCKED_BITSET_HPP
#define AUTOBRAID_ROUTE_BLOCKED_BITSET_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "lattice/geometry.hpp"

namespace autobraid {

/**
 * Owning bitmap with one bit per vertex; bit set = vertex blocked.
 * Tail bits of the last word are kept zero so whole-word scans
 * (countSet, anySetInRange, word comparison) need no edge masking.
 */
class BlockedBitset
{
  public:
    BlockedBitset() = default;

    explicit BlockedBitset(size_t bits, bool value = false)
    {
        assign(bits, value);
    }

    /** Resize to @p bits bits, all set to @p value. */
    void assign(size_t bits, bool value)
    {
        size_ = bits;
        words_.assign(wordCount(bits), value ? ~uint64_t{0} : 0);
        clearTail();
    }

    /** Number of bits (vertices) covered. */
    size_t size() const { return size_; }

    bool test(size_t i) const
    {
        return (words_[i >> 6] >> (i & 63u)) & 1u;
    }

    /** True when vertex @p v is blocked. */
    bool operator[](VertexId v) const
    {
        return test(static_cast<size_t>(v));
    }

    void set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63u); }

    void clear(size_t i)
    {
        words_[i >> 6] &= ~(uint64_t{1} << (i & 63u));
    }

    void set(size_t i, bool value)
    {
        if (value)
            set(i);
        else
            clear(i);
    }

    /** Clear every bit without changing the size. */
    void clearAll()
    {
        std::fill(words_.begin(), words_.end(), uint64_t{0});
    }

    /** Word-wise copy from raw @p words covering @p bits vertices. */
    void assignWords(const uint64_t *words, size_t bits)
    {
        size_ = bits;
        words_.assign(words, words + wordCount(bits));
        clearTail();
    }

    /** Word-wise copy from @p other (sizes must match). */
    void assignFrom(const BlockedBitset &other)
    {
        require(other.size_ == size_,
                "BlockedBitset::assignFrom: size mismatch");
        std::copy(other.words_.begin(), other.words_.end(),
                  words_.begin());
    }

    /** Word-wise OR of @p other into this (sizes must match). */
    void orWith(const BlockedBitset &other)
    {
        require(other.size_ == size_,
                "BlockedBitset::orWith: size mismatch");
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] |= other.words_[w];
    }

    /**
     * True when any bit in [@p begin, @p end) is set. Whole interior
     * words are tested with a single compare; only the two edge words
     * need masking.
     */
    bool anySetInRange(size_t begin, size_t end) const
    {
        if (begin >= end)
            return false;
        const size_t first = begin >> 6;
        const size_t last = (end - 1) >> 6;
        const uint64_t head = ~uint64_t{0} << (begin & 63u);
        const uint64_t tail =
            ~uint64_t{0} >> (63u - ((end - 1) & 63u));
        if (first == last)
            return (words_[first] & head & tail) != 0;
        if ((words_[first] & head) != 0)
            return true;
        for (size_t w = first + 1; w < last; ++w)
            if (words_[w] != 0)
                return true;
        return (words_[last] & tail) != 0;
    }

    /** Popcount over the whole mask. */
    size_t countSet() const
    {
        size_t n = 0;
        for (const uint64_t w : words_)
            n += static_cast<size_t>(popcount64(w));
        return n;
    }

    const uint64_t *words() const { return words_.data(); }
    size_t numWords() const { return words_.size(); }

    bool operator==(const BlockedBitset &other) const
    {
        return size_ == other.size_ && words_ == other.words_;
    }

    static size_t wordCount(size_t bits) { return (bits + 63u) >> 6; }

  private:
    static int popcount64(uint64_t w)
    {
#if defined(__GNUC__) || defined(__clang__)
        return __builtin_popcountll(w);
#else
        int n = 0;
        for (; w; w &= w - 1)
            ++n;
        return n;
#endif
    }

    /** Keep bits past size_ zero so word-level scans stay exact. */
    void clearTail()
    {
        if (size_ & 63u)
            words_.back() &= ~uint64_t{0} >> (64u - (size_ & 63u));
    }

    size_t size_ = 0;
    std::vector<uint64_t> words_;
};

} // namespace autobraid

#endif // AUTOBRAID_ROUTE_BLOCKED_BITSET_HPP

#include "route/astar.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

BlockedBitset
noBlockedVertices(const Grid &grid)
{
    return BlockedBitset(static_cast<size_t>(grid.numVertices()));
}

namespace {

/** Smaller f first; larger g preferred on ties (keeps the frontier
 * tight). Inverted for heap use (std::push_heap keeps the max first). */
struct OpenLater
{
    bool
    operator()(const std::tuple<int32_t, int32_t, VertexId> &a,
               const std::tuple<int32_t, int32_t, VertexId> &b) const
    {
        if (std::get<0>(a) != std::get<0>(b))
            return std::get<0>(a) > std::get<0>(b);
        return std::get<1>(a) < std::get<1>(b);
    }
};

} // namespace

AStarRouter::AStarRouter(const Grid &grid)
    : grid_(&grid),
      seen_(static_cast<size_t>(grid.numVertices()), 0),
      dist_(static_cast<size_t>(grid.numVertices()), 0),
      parent_(static_cast<size_t>(grid.numVertices()), -1),
      region_stamp_(static_cast<size_t>(grid.numVertices()), 0)
{}

void
AStarRouter::beginMaskEpoch()
{
    epoch_active_ = true;
    if (flood_id_ == UINT32_MAX) {
        std::fill(region_stamp_.begin(), region_stamp_.end(), 0u);
        flood_id_ = 0;
    }
    epoch_first_flood_ = flood_id_ + 1;
}

std::optional<Path>
AStarRouter::route(const Cell &src, const Cell &dst, BlockedMask blocked,
                   const BBox *confine, unsigned src_corners,
                   unsigned dst_corners)
{
    require(!(src == dst), "AStarRouter::route: source equals target");
    require(grid_->inBounds(src) && grid_->inBounds(dst),
            "AStarRouter::route: cell out of bounds");
    require((src_corners & kAllCorners) != 0 &&
                (dst_corners & kAllCorners) != 0,
            "AStarRouter::route: empty corner mask");
    require(blocked.size() ==
                static_cast<size_t>(grid_->numVertices()),
            "AStarRouter::route: blocked mask does not cover the grid");

    ++stamp_;
    const auto targets = grid_->corners(dst);
    const auto target_ids = grid_->cornerIds(dst);
    const auto source_ids = grid_->cornerIds(src);

    // Failed-flood region cache (see beginMaskEpoch): when every
    // usable source corner sits in a region some failed flood of this
    // epoch already explored, and no usable target corner carries a
    // matching region stamp, the query cannot succeed — masks only
    // grow within an epoch, so regions only shrink.
    const bool cache = epoch_active_ && confine == nullptr;
    if (cache) {
        uint32_t src_stamps[4];
        int n_src = 0;
        bool all_stamped = true;
        for (int i = 0; i < 4; ++i) {
            if (!(src_corners & (1u << i)))
                continue;
            const VertexId s = source_ids[static_cast<size_t>(i)];
            if (blocked[s])
                continue;
            const uint32_t st =
                region_stamp_[static_cast<size_t>(s)];
            if (st < epoch_first_flood_) {
                all_stamped = false;
                break;
            }
            src_stamps[n_src++] = st;
        }
        if (all_stamped && n_src > 0) {
            bool maybe_reachable = false;
            for (int i = 0; i < 4 && !maybe_reachable; ++i) {
                if (!(dst_corners & (1u << i)))
                    continue;
                const VertexId d =
                    target_ids[static_cast<size_t>(i)];
                if (blocked[d])
                    continue;
                const uint32_t st =
                    region_stamp_[static_cast<size_t>(d)];
                for (int k = 0; k < n_src; ++k) {
                    if (src_stamps[k] == st) {
                        maybe_reachable = true;
                        break;
                    }
                }
            }
            if (!maybe_reachable) {
                AUTOBRAID_COUNT("route.astar_region_skips");
                return std::nullopt;
            }
        }
    }

    auto heuristic = [&targets, dst_corners](const Vertex &v) {
        int best = -1;
        for (int i = 0; i < 4; ++i) {
            if (!(dst_corners & (1u << i)))
                continue;
            const int d = targets[static_cast<size_t>(i)].dist(v);
            if (best < 0 || d < best)
                best = d;
        }
        return best;
    };
    auto is_target = [&target_ids, dst_corners](VertexId v) {
        for (int i = 0; i < 4; ++i)
            if ((dst_corners & (1u << i)) &&
                target_ids[static_cast<size_t>(i)] == v)
                return true;
        return false;
    };
    auto usable = [&](VertexId v) {
        if (blocked[v])
            return false;
        return !confine || confine->contains(grid_->vertex(v));
    };

    open_.clear();
    const OpenLater later{};

    for (int i = 0; i < 4; ++i) {
        if (!(src_corners & (1u << i)))
            continue;
        const VertexId s = source_ids[static_cast<size_t>(i)];
        if (!usable(s))
            continue;
        const auto idx = static_cast<size_t>(s);
        if (seen_[idx] == stamp_)
            continue; // shared corner pushed twice
        seen_[idx] = stamp_;
        dist_[idx] = 1; // cost counts vertices consumed
        parent_[idx] = -1;
        open_.emplace_back(1 + heuristic(grid_->vertex(s)), 1, s);
        std::push_heap(open_.begin(), open_.end(), later);
    }

    // Search-effort telemetry: expansions per query feed the
    // "route.astar_nodes" histogram (no-op without a sink).
    size_t expanded = 0;
    std::array<VertexId, 4> nbrs;
    while (!open_.empty()) {
        const auto [f, g, v] = open_.front();
        std::pop_heap(open_.begin(), open_.end(), later);
        open_.pop_back();
        const auto vi = static_cast<size_t>(v);
        if (dist_[vi] != g || seen_[vi] != stamp_)
            continue; // stale entry
        ++expanded;
        if (is_target(v)) {
            Path path;
            for (VertexId cur = v; cur != -1;
                 cur = parent_[static_cast<size_t>(cur)])
                path.vertices.push_back(cur);
            std::reverse(path.vertices.begin(), path.vertices.end());
            AUTOBRAID_OBSERVE("route.astar_nodes",
                              static_cast<double>(expanded));
            return path;
        }
        const int n = grid_->neighbors(v, nbrs);
        for (int i = 0; i < n; ++i) {
            const VertexId w = nbrs[i];
            if (!usable(w))
                continue;
            const auto wi = static_cast<size_t>(w);
            const int32_t ng = g + 1;
            if (seen_[wi] == stamp_ && dist_[wi] <= ng)
                continue;
            seen_[wi] = stamp_;
            dist_[wi] = ng;
            parent_[wi] = v;
            open_.emplace_back(ng + heuristic(grid_->vertex(w)), ng, w);
            std::push_heap(open_.begin(), open_.end(), later);
        }
    }
    // The exhausted flood visited exactly the free connected region of
    // the usable source corners — the vertices carrying this query's
    // seen_ stamp. Stamp that region so later same-epoch queries from
    // inside it can fail without searching. The scan is O(vertices)
    // and runs only on the failure path, so successful routes pay
    // nothing for the cache.
    if (cache) {
        ++flood_id_;
        for (size_t v = 0; v < seen_.size(); ++v)
            if (seen_[v] == stamp_)
                region_stamp_[v] = flood_id_;
    }
    AUTOBRAID_OBSERVE("route.astar_nodes",
                      static_cast<double>(expanded));
    AUTOBRAID_COUNT("route.astar_misses");
    return std::nullopt;
}

} // namespace autobraid

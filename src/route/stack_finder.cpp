#include "route/stack_finder.hpp"

#include <algorithm>
#include <thread>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

namespace {

/** Instants smaller than this route sequentially even with jobs > 1:
 * thread spawn would cost more than the routing. Execution-only
 * gating — the outcome is identical either way. */
constexpr size_t kParallelTaskFloor = 16;

} // namespace

StackPathFinder::StackPathFinder(const Grid &grid, int jobs)
    : grid_(&grid), jobs_(jobs < 1 ? 1 : jobs)
{
    scratch_.push_back(std::make_unique<RouteScratch>(grid));
}

void
StackPathFinder::runStack(const std::vector<CxTask> &tasks,
                          const std::vector<size_t> *global_index,
                          BlockedMask blocked, InterferenceGraph &ig,
                          RouteScratch &s, RoutingOutcome &out)
{
    // Stage 1-2: peel max-degree nodes onto the stack until maxdeg <= 2.
    s.stack.clear();
    while (ig.maxDegree() > 2) {
        const size_t pick = ig.peelPick(tasks);
        s.stack.push_back(pick);
        ig.remove(pick);
    }
    AUTOBRAID_OBSERVE("route.stack_peeled",
                      static_cast<double>(s.stack.size()));

    // Stage 3: route the residual low-interference gates, smallest
    // bounding box first so short-distance pairs consume local resources.
    ig.activeNodes(s.residual);
    std::stable_sort(s.residual.begin(), s.residual.end(),
                     [&tasks](size_t x, size_t y) {
                         return tasks[x].bbox.area() < tasks[y].bbox.area();
                     });

    // The caller's blocked view merged with vertices claimed by paths
    // routed earlier in this call (the old per-call Occupancy). The
    // mask only gains bits from here on, so failed A* floods can be
    // cached for the rest of the call.
    s.unavailable.assignWords(blocked.words(), blocked.size());
    s.router.beginMaskEpoch();
    auto try_route = [&](size_t idx) {
        auto path = s.router.route(tasks[idx].a, tasks[idx].b,
                                   BlockedMask(s.unavailable));
        const size_t gidx = global_index ? (*global_index)[idx] : idx;
        if (!path) {
            out.failed.push_back(gidx);
            return;
        }
        for (VertexId v : path->vertices)
            s.unavailable.set(static_cast<size_t>(v));
        out.routed.emplace_back(gidx, std::move(*path));
    };

    for (size_t idx : s.residual)
        try_route(idx);

    // Stage 4: pop the stack LIFO.
    while (!s.stack.empty()) {
        const size_t idx = s.stack.back();
        s.stack.pop_back();
        try_route(idx);
    }
}

RoutingOutcome
StackPathFinder::findPaths(const std::vector<CxTask> &tasks,
                           BlockedMask blocked)
{
    RoutingOutcome outcome;
    if (tasks.empty())
        return outcome;
    AUTOBRAID_SPAN("route.stack_finder");
    AUTOBRAID_OBSERVE("route.stack_tasks",
                      static_cast<double>(tasks.size()));
    require(blocked.size() ==
                static_cast<size_t>(grid_->numVertices()),
            "StackPathFinder: blocked mask does not cover the grid");

    ig_.rebuild(tasks);
    const size_t ncomp = ig_.components(comp_id_);
    AUTOBRAID_OBSERVE("route.components",
                      static_cast<double>(ncomp));

    if (ncomp == 1) {
        // One component: the global stack discipline IS the
        // per-component one; route in place, no merge needed.
        runStack(tasks, nullptr, blocked, ig_, *scratch_[0], outcome);
    } else {
        // Gather members per component (components are numbered by
        // smallest task index, members stay in ascending index order).
        if (comp_members_.size() < ncomp)
            comp_members_.resize(ncomp);
        for (size_t c = 0; c < ncomp; ++c)
            comp_members_[c].clear();
        for (size_t i = 0; i < tasks.size(); ++i)
            comp_members_[comp_id_[i]].push_back(i);
        proposals_.resize(ncomp);

        // Propose routes for one component against mask @p base: a
        // pure function of (component, base), so it can run on any
        // thread without changing the result.
        auto route_comp = [&](size_t c, RouteScratch &s,
                              BlockedMask base, RoutingOutcome &p) {
            s.comp_tasks.clear();
            s.comp_index.clear();
            for (const size_t i : comp_members_[c]) {
                s.comp_index.push_back(i);
                s.comp_tasks.push_back(tasks[i]);
            }
            p.routed.clear();
            p.failed.clear();
            s.ig.rebuild(s.comp_tasks);
            runStack(s.comp_tasks, &s.comp_index, base, s.ig, s, p);
        };

        int nworkers = 1;
        if (jobs_ > 1 && tasks.size() >= kParallelTaskFloor)
            nworkers = static_cast<int>(
                std::min<size_t>(static_cast<size_t>(jobs_), ncomp));
        if (nworkers <= 1) {
            for (size_t c = 0; c < ncomp; ++c)
                route_comp(c, *scratch_[0], blocked, proposals_[c]);
        } else {
            while (scratch_.size() < static_cast<size_t>(nworkers))
                scratch_.push_back(
                    std::make_unique<RouteScratch>(*grid_));
            std::vector<std::thread> threads;
            threads.reserve(static_cast<size_t>(nworkers) - 1);
            for (int w = 1; w < nworkers; ++w)
                threads.emplace_back([&, w] {
                    for (size_t c = static_cast<size_t>(w); c < ncomp;
                         c += static_cast<size_t>(nworkers))
                        route_comp(c, *scratch_[static_cast<size_t>(w)],
                                   blocked, proposals_[c]);
                });
            for (size_t c = 0; c < ncomp;
                 c += static_cast<size_t>(nworkers))
                route_comp(c, *scratch_[0], blocked, proposals_[c]);
            for (std::thread &t : threads)
                t.join();
        }

        // Merge in ascending component order. Proposals avoided the
        // base mask but not each other; when a later component's path
        // crosses an accepted claim, re-route that whole component
        // against base + claims (still deterministic: the merge order
        // and accumulated mask never depend on the worker count).
        merged_.assignWords(blocked.words(), blocked.size());
        claimed_.assign(blocked.size(), false);
        for (size_t c = 0; c < ncomp; ++c) {
            RoutingOutcome &p = proposals_[c];
            bool conflict = false;
            for (const auto &rp : p.routed) {
                for (const VertexId v : rp.second.vertices)
                    if (claimed_[v]) {
                        conflict = true;
                        break;
                    }
                if (conflict)
                    break;
            }
            if (conflict) {
                AUTOBRAID_COUNT("route.merge_repairs");
                route_comp(c, *scratch_[0], BlockedMask(merged_), p);
            }
            for (auto &rp : p.routed) {
                for (const VertexId v : rp.second.vertices) {
                    claimed_.set(static_cast<size_t>(v));
                    merged_.set(static_cast<size_t>(v));
                }
                outcome.routed.push_back(std::move(rp));
            }
            for (const size_t idx : p.failed)
                outcome.failed.push_back(idx);
        }
    }

    outcome.ratio = static_cast<double>(outcome.routed.size()) /
                    static_cast<double>(tasks.size());
    return outcome;
}

} // namespace autobraid

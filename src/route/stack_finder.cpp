#include "route/stack_finder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

StackPathFinder::StackPathFinder(const Grid &grid) : router_(grid) {}

RoutingOutcome
StackPathFinder::findPaths(const std::vector<CxTask> &tasks,
                           BlockedMask blocked)
{
    RoutingOutcome outcome;
    if (tasks.empty())
        return outcome;
    AUTOBRAID_SPAN("route.stack_finder");
    AUTOBRAID_OBSERVE("route.stack_tasks",
                      static_cast<double>(tasks.size()));
    require(blocked.size() ==
                static_cast<size_t>(router_.grid().numVertices()),
            "StackPathFinder: blocked mask does not cover the grid");

    // Stage 1-2: peel max-degree nodes onto the stack until maxdeg <= 2.
    ig_.rebuild(tasks);
    stack_.clear();
    while (ig_.maxDegree() > 2) {
        ig_.maxDegreeNodes(ties_);
        size_t pick = ties_.front();
        for (size_t n : ties_)
            if (tasks[n].bbox.area() > tasks[pick].bbox.area())
                pick = n;
        stack_.push_back(pick);
        ig_.remove(pick);
    }
    AUTOBRAID_OBSERVE("route.stack_peeled",
                      static_cast<double>(stack_.size()));

    // Stage 3: route the residual low-interference gates, smallest
    // bounding box first so short-distance pairs consume local resources.
    ig_.activeNodes(residual_);
    std::stable_sort(residual_.begin(), residual_.end(),
                     [&tasks](size_t x, size_t y) {
                         return tasks[x].bbox.area() < tasks[y].bbox.area();
                     });

    // The caller's blocked view merged with vertices claimed by paths
    // routed earlier in this call (the old per-call Occupancy).
    unavailable_.assign(blocked.data(), blocked.data() + blocked.size());
    auto try_route = [&](size_t idx) {
        auto path = router_.route(tasks[idx].a, tasks[idx].b,
                                  BlockedMask(unavailable_));
        if (!path) {
            outcome.failed.push_back(idx);
            return;
        }
        for (VertexId v : path->vertices)
            unavailable_[static_cast<size_t>(v)] = 1;
        outcome.routed.emplace_back(idx, std::move(*path));
    };

    for (size_t idx : residual_)
        try_route(idx);

    // Stage 4: pop the stack LIFO.
    while (!stack_.empty()) {
        const size_t idx = stack_.back();
        stack_.pop_back();
        try_route(idx);
    }

    outcome.ratio = static_cast<double>(outcome.routed.size()) /
                    static_cast<double>(tasks.size());
    return outcome;
}

} // namespace autobraid

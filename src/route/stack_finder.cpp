#include "route/stack_finder.hpp"

#include <algorithm>

#include "lattice/occupancy.hpp"
#include "telemetry/telemetry.hpp"

namespace autobraid {

StackPathFinder::StackPathFinder(const Grid &grid) : router_(grid) {}

RoutingOutcome
StackPathFinder::findPaths(const std::vector<CxTask> &tasks,
                           const BlockedFn &blocked)
{
    RoutingOutcome outcome;
    if (tasks.empty())
        return outcome;
    AUTOBRAID_SPAN("route.stack_finder");
    AUTOBRAID_OBSERVE("route.stack_tasks",
                      static_cast<double>(tasks.size()));

    // Stage 1-2: peel max-degree nodes onto the stack until maxdeg <= 2.
    InterferenceGraph ig(tasks);
    std::vector<size_t> stack;
    while (ig.maxDegree() > 2) {
        auto ties = ig.maxDegreeNodes();
        size_t pick = ties.front();
        for (size_t n : ties)
            if (tasks[n].bbox.area() > tasks[pick].bbox.area())
                pick = n;
        stack.push_back(pick);
        ig.remove(pick);
    }
    AUTOBRAID_OBSERVE("route.stack_peeled",
                      static_cast<double>(stack.size()));

    // Stage 3: route the residual low-interference gates, smallest
    // bounding box first so short-distance pairs consume local resources.
    std::vector<size_t> residual = ig.activeNodes();
    std::stable_sort(residual.begin(), residual.end(),
                     [&tasks](size_t x, size_t y) {
                         return tasks[x].bbox.area() < tasks[y].bbox.area();
                     });

    Occupancy claimed(router_.grid());
    auto unavailable = [&](VertexId v) {
        return blocked(v) || !claimed.free(v);
    };
    auto try_route = [&](size_t idx) {
        auto path = router_.route(tasks[idx].a, tasks[idx].b, unavailable);
        if (!path) {
            outcome.failed.push_back(idx);
            return;
        }
        claimed.claim(path->vertices);
        outcome.routed.emplace_back(idx, std::move(*path));
    };

    for (size_t idx : residual)
        try_route(idx);

    // Stage 4: pop the stack LIFO.
    while (!stack.empty()) {
        const size_t idx = stack.back();
        stack.pop_back();
        try_route(idx);
    }

    outcome.ratio = static_cast<double>(outcome.routed.size()) /
                    static_cast<double>(tasks.size());
    return outcome;
}

} // namespace autobraid

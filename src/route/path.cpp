#include "route/path.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/text.hpp"

namespace autobraid {

std::string
Path::validate(const Grid &grid, const Cell &src, const Cell &dst) const
{
    if (vertices.empty())
        return "path is empty";
    std::unordered_set<VertexId> seen;
    for (size_t i = 0; i < vertices.size(); ++i) {
        const VertexId v = vertices[i];
        if (v < 0 || v >= grid.numVertices())
            return strformat("vertex id %d out of range", v);
        if (!seen.insert(v).second)
            return strformat("vertex %s repeated",
                             grid.vertex(v).toString().c_str());
        if (i > 0) {
            const Vertex a = grid.vertex(vertices[i - 1]);
            const Vertex b = grid.vertex(v);
            if (a.dist(b) != 1)
                return strformat("vertices %s and %s are not adjacent",
                                 a.toString().c_str(),
                                 b.toString().c_str());
        }
    }
    auto is_corner = [&grid](const Cell &cell, VertexId v) {
        const auto ids = grid.cornerIds(cell);
        return std::find(ids.begin(), ids.end(), v) != ids.end();
    };
    if (!is_corner(src, vertices.front()))
        return strformat("path does not start at a corner of %s",
                         src.toString().c_str());
    if (!is_corner(dst, vertices.back()))
        return strformat("path does not end at a corner of %s",
                         dst.toString().c_str());
    return "";
}

std::string
Path::toString(const Grid &grid) const
{
    std::string out;
    for (VertexId v : vertices) {
        if (!out.empty())
            out += " -> ";
        out += grid.vertex(v).toString();
    }
    return out;
}

} // namespace autobraid
